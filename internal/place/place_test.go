package place

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"wivfi/internal/platform"
	"wivfi/internal/topo"
)

// quadrantAssign returns the thread->cluster map where thread i belongs to
// the quadrant of tile i (a natural, size-respecting assignment).
func quadrantAssign(chip platform.Chip) []int {
	return topo.QuadrantOf(chip)
}

// randTraffic builds a random thread traffic matrix.
func randTraffic(rng *rand.Rand, n int, density float64) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			if i != j && rng.Float64() < density {
				m[i][j] = rng.Float64()
			}
		}
	}
	return m
}

func TestIdentityMapping(t *testing.T) {
	m := NewIdentityMapping(8)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if m.ThreadToTile[i] != i || m.TileToThread[i] != i {
			t.Fatal("identity mapping is not identity")
		}
	}
}

func TestMappingValidateCatchesCorruption(t *testing.T) {
	m := NewIdentityMapping(4)
	m.ThreadToTile[0] = 1 // now two threads map to tile 1
	if err := m.Validate(); err == nil {
		t.Error("corrupt mapping accepted")
	}
	m2 := Mapping{ThreadToTile: []int{0}, TileToThread: []int{0, 1}}
	if err := m2.Validate(); err == nil {
		t.Error("length mismatch accepted")
	}
	m3 := NewIdentityMapping(4)
	m3.ThreadToTile[2] = 9
	if err := m3.Validate(); err == nil {
		t.Error("out-of-range tile accepted")
	}
}

func TestMapTraffic(t *testing.T) {
	traffic := [][]float64{
		{0, 5, 0},
		{0, 0, 2},
		{1, 0, 0},
	}
	m := Mapping{ThreadToTile: []int{2, 0, 1}, TileToThread: []int{1, 2, 0}}
	out := MapTraffic(traffic, m)
	// thread 0 (tile 2) -> thread 1 (tile 0): 5
	if out[2][0] != 5 || out[0][1] != 2 || out[1][2] != 1 {
		t.Errorf("MapTraffic = %v", out)
	}
	// totals preserved
	var sumIn, sumOut float64
	for i := range traffic {
		for j := range traffic {
			sumIn += traffic[i][j]
			sumOut += out[i][j]
		}
	}
	if sumIn != sumOut {
		t.Errorf("traffic total changed: %v -> %v", sumIn, sumOut)
	}
}

func TestClusterTraffic(t *testing.T) {
	assign := []int{0, 0, 1, 1}
	traffic := [][]float64{
		{0, 9, 2, 0}, // 0->1 intra; 0->2 inter
		{0, 0, 0, 3}, // 1->3 inter
		{0, 0, 0, 7}, // 2->3 intra
		{1, 0, 0, 0}, // 3->0 inter
	}
	ct := ClusterTraffic(traffic, assign, 2)
	if ct[0][1] != 5 { // 2 + 3
		t.Errorf("ct[0][1] = %v, want 5", ct[0][1])
	}
	if ct[1][0] != 1 {
		t.Errorf("ct[1][0] = %v, want 1", ct[1][0])
	}
	if ct[0][0] != 0 || ct[1][1] != 0 {
		t.Error("intra-cluster traffic leaked into cluster matrix")
	}
}

func TestMapThreadsMinDistanceImprovesOverInitial(t *testing.T) {
	chip := platform.DefaultChip()
	assign := quadrantAssign(chip)
	rng := rand.New(rand.NewSource(3))
	traffic := randTraffic(rng, 64, 0.1)
	quads := topo.Quadrants(chip)
	initial := initialClusterMapping(assign, quads, 64)
	dist := func(a, b int) float64 { return float64(chip.ManhattanHops(a, b)) }
	initialCost := mappingCost(traffic, initial, dist)

	m, err := MapThreadsMinDistance(chip, assign, traffic, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	optimized := mappingCost(traffic, m, dist)
	if optimized > initialCost {
		t.Errorf("optimized cost %v above initial %v", optimized, initialCost)
	}
	// threads stay inside their cluster's quadrant
	of := topo.QuadrantOf(chip)
	for th, tile := range m.ThreadToTile {
		if of[tile] != assign[th] {
			t.Fatalf("thread %d of cluster %d mapped to quadrant %d", th, assign[th], of[tile])
		}
	}
}

func TestMapThreadsMinDistanceRejectsBadSizes(t *testing.T) {
	chip := platform.DefaultChip()
	// Island labels with a gap (island 1 empty) are invalid.
	gap := make([]int, 64)
	for i := 32; i < 64; i++ {
		gap[i] = 2
	}
	if _, err := MapThreadsMinDistance(chip, gap, randTraffic(rand.New(rand.NewSource(1)), 64, 0.1), 1, 10); err == nil {
		t.Error("assignment with empty island accepted")
	}
	neg := make([]int, 64)
	neg[3] = -1
	if _, err := MapThreadsMinDistance(chip, neg, randTraffic(rand.New(rand.NewSource(1)), 64, 0.1), 1, 10); err == nil {
		t.Error("negative island index accepted")
	}
	if _, err := MapThreadsMinDistance(chip, gap[:10], nil, 1, 10); err == nil {
		t.Error("short assignment accepted")
	}
	// A single chip-wide cluster is a valid (degenerate) partition under
	// the generalized region API.
	if _, err := MapThreadsMinDistance(chip, make([]int, 64), randTraffic(rand.New(rand.NewSource(1)), 64, 0.1), 1, 2); err != nil {
		t.Errorf("single-cluster assignment rejected: %v", err)
	}
}

func TestSwapDeltaMatchesRecompute(t *testing.T) {
	chip := platform.DefaultChip()
	assign := quadrantAssign(chip)
	rng := rand.New(rand.NewSource(7))
	traffic := randTraffic(rng, 64, 0.15)
	m := initialClusterMapping(assign, topo.Quadrants(chip), 64)
	dist := func(a, b int) float64 { return float64(chip.ManhattanHops(a, b)) }
	base := mappingCost(traffic, m, dist)
	for k := 0; k < 50; k++ {
		a, b := rng.Intn(64), rng.Intn(64)
		if a == b || assign[a] != assign[b] {
			continue
		}
		d := swapDelta(traffic, m, dist, a, b)
		applySwap(&m, a, b)
		after := mappingCost(traffic, m, dist)
		if math.Abs(base+d-after) > 1e-9 {
			t.Fatalf("swap delta mismatch: %v + %v != %v", base, d, after)
		}
		base = after
	}
}

func TestCenterWIs(t *testing.T) {
	chip := platform.DefaultChip()
	placement := CenterWIs(chip)
	if len(placement) != 4 {
		t.Fatalf("placement for %d clusters", len(placement))
	}
	of := topo.QuadrantOf(chip)
	seen := map[int]bool{}
	for q, wis := range placement {
		if len(wis) != topo.WIsPerCluster {
			t.Fatalf("cluster %d has %d WIs", q, len(wis))
		}
		for _, s := range wis {
			if of[s] != q {
				t.Errorf("WI %d of cluster %d lies in quadrant %d", s, q, of[s])
			}
			if seen[s] {
				t.Errorf("switch %d hosts two WIs", s)
			}
			seen[s] = true
			// near the quadrant centre: within 2 hops of it
			r0 := (q / 2) * 4
			c0 := (q % 2) * 4
			center := chip.ID(r0+2, c0+2)
			if chip.ManhattanHops(s, center) > 2 {
				t.Errorf("WI %d is %d hops from quadrant centre", s, chip.ManhattanHops(s, center))
			}
		}
	}
}

func TestMinHopCountEndToEnd(t *testing.T) {
	chip := platform.DefaultChip()
	assign := quadrantAssign(chip)
	rng := rand.New(rand.NewSource(11))
	traffic := randTraffic(rng, 64, 0.1)
	opts := DefaultOptions()
	opts.WISweeps = 15 // keep the test fast
	res, err := MinHopCount(chip, assign, traffic, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Mapping.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := res.Topology.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(res.Topology.WIs) != 12 {
		t.Errorf("WI count = %d", len(res.Topology.WIs))
	}
	if res.AvgWeightedHops <= 0 {
		t.Errorf("AvgWeightedHops = %v", res.AvgWeightedHops)
	}
	// WIs stay in their quadrants
	of := topo.QuadrantOf(chip)
	for q, wis := range res.WIPlacement {
		for _, s := range wis {
			if of[s] != q {
				t.Errorf("WI %d of cluster %d in quadrant %d", s, q, of[s])
			}
		}
	}
}

func TestMaxWirelessUtilEndToEnd(t *testing.T) {
	chip := platform.DefaultChip()
	assign := quadrantAssign(chip)
	rng := rand.New(rand.NewSource(13))
	traffic := randTraffic(rng, 64, 0.1)
	res, err := MaxWirelessUtil(chip, assign, traffic, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Mapping.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := res.Topology.Validate(); err != nil {
		t.Fatal(err)
	}
	// busiest thread of each cluster must sit on a tile adjacent to a WI
	volume := make([]float64, 64)
	for i, row := range traffic {
		for j, f := range row {
			volume[i] += f
			volume[j] += f
		}
	}
	for q := 0; q < 4; q++ {
		busiest, bv := -1, -1.0
		for th, c := range assign {
			if c == q && volume[th] > bv {
				busiest, bv = th, volume[th]
			}
		}
		tile := res.Mapping.ThreadToTile[busiest]
		if d := distToNearestWI(chip, tile, res.WIPlacement[q]); d > 1 {
			t.Errorf("cluster %d busiest thread sits %d hops from nearest WI", q, d)
		}
	}
}

func TestMaxWirelessUtilCarriesMoreWirelessTraffic(t *testing.T) {
	// The defining property of strategy B (Fig. 6's premise): it routes a
	// larger share of traffic over wireless links than strategy A for
	// inter-cluster-heavy workloads.
	chip := platform.DefaultChip()
	assign := quadrantAssign(chip)
	rng := rand.New(rand.NewSource(17))
	n := 64
	traffic := make([][]float64, n)
	for i := range traffic {
		traffic[i] = make([]float64, n)
	}
	// a handful of hot threads per cluster talking across clusters
	for q := 0; q < 4; q++ {
		for p := 0; p < 4; p++ {
			if q == p {
				continue
			}
			for k := 0; k < 3; k++ {
				var a, b int
				for {
					a = rng.Intn(n)
					if assign[a] == q {
						break
					}
				}
				for {
					b = rng.Intn(n)
					if assign[b] == p {
						break
					}
				}
				traffic[a][b] += 2
			}
		}
	}
	opts := DefaultOptions()
	opts.WISweeps = 10
	resA, err := MinHopCount(chip, assign, traffic, opts)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := MaxWirelessUtil(chip, assign, traffic, opts)
	if err != nil {
		t.Fatal(err)
	}
	fracA := wirelessShare(resA)
	fracB := wirelessShare(resB)
	if fracB <= fracA {
		t.Errorf("max-wireless strategy share %.3f not above min-hop %.3f", fracB, fracA)
	}
}

// wirelessShare computes the fraction of flit-hops over wireless links for
// the result's switch traffic.
func wirelessShare(r Result) float64 {
	var wireless, total float64
	n := len(r.SwitchTraffic)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			f := r.SwitchTraffic[s][d]
			if f == 0 || s == d {
				continue
			}
			for _, l := range r.Routes.PathLinks(s, d) {
				if l.Type == topo.Wireless {
					wireless += f
				}
				total += f
			}
		}
	}
	if total == 0 {
		return 0
	}
	return wireless / total
}

func TestPlacementDeterministic(t *testing.T) {
	chip := platform.DefaultChip()
	assign := quadrantAssign(chip)
	rng := rand.New(rand.NewSource(19))
	traffic := randTraffic(rng, 64, 0.08)
	opts := DefaultOptions()
	opts.WISweeps = 8
	a, err := MinHopCount(chip, assign, traffic, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MinHopCount(chip, assign, traffic, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgWeightedHops != b.AvgWeightedHops {
		t.Errorf("non-deterministic placement: %v vs %v", a.AvgWeightedHops, b.AvgWeightedHops)
	}
	for i := range a.Mapping.ThreadToTile {
		if a.Mapping.ThreadToTile[i] != b.Mapping.ThreadToTile[i] {
			t.Fatal("non-deterministic mapping")
		}
	}
}

func TestCenterWIsOnSmallerChip(t *testing.T) {
	chip := platform.Chip{Rows: 4, Cols: 4, TileMM: 2.5}
	placement := CenterWIs(chip)
	if len(placement) != 4 {
		t.Fatalf("placement for %d clusters", len(placement))
	}
	seen := map[int]bool{}
	of := topo.QuadrantOf(chip)
	for q, wis := range placement {
		if len(wis) != topo.WIsPerCluster {
			t.Fatalf("cluster %d has %d WIs", q, len(wis))
		}
		for _, s := range wis {
			if s < 0 || s >= chip.NumCores() {
				t.Fatalf("WI %d out of range on 4x4 chip", s)
			}
			if of[s] != q {
				t.Errorf("WI %d of cluster %d in quadrant %d", s, q, of[s])
			}
			if seen[s] {
				t.Errorf("duplicate WI switch %d", s)
			}
			seen[s] = true
		}
	}
}

func TestMaxWirelessPinnedThreadsStayByWIs(t *testing.T) {
	// after the locality polish, the three hottest threads per cluster must
	// still sit on the WI-adjacent tiles
	chip := platform.DefaultChip()
	assign := quadrantAssign(chip)
	rng := rand.New(rand.NewSource(23))
	traffic := randTraffic(rng, 64, 0.15)
	res, err := MaxWirelessUtil(chip, assign, traffic, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	volume := make([]float64, 64)
	for i, row := range traffic {
		for j, f := range row {
			volume[i] += f
			volume[j] += f
		}
	}
	for q := 0; q < 4; q++ {
		// the three hottest threads of the cluster
		var threads []int
		for th, c := range assign {
			if c == q {
				threads = append(threads, th)
			}
		}
		sort.SliceStable(threads, func(a, b int) bool { return volume[threads[a]] > volume[threads[b]] })
		for i := 0; i < 3; i++ {
			tile := res.Mapping.ThreadToTile[threads[i]]
			if d := distToNearestWI(chip, tile, res.WIPlacement[q]); d > 1 {
				t.Errorf("cluster %d pinned thread #%d sits %d hops from a WI after polish", q, i, d)
			}
		}
	}
}
