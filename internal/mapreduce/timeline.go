package mapreduce

import (
	"fmt"
	"sync/atomic"

	"wivfi/internal/timeline"
)

// runTimeline is one Run's time-resolved instrumentation: per-worker
// phase tracks plus steal-rate and queue-depth series, indexed by a
// deterministic work-item count (tasks split, then records mapped, then
// keys sharded, then pairs merged) — never wall clock. nil when no
// timeline collector is
// installed; every method no-ops on a nil receiver, so the engine calls
// them unconditionally and the disabled path allocates nothing.
//
// With Workers > 1 the index each sample lands on depends on goroutine
// interleaving (the totals do not); run with Workers=1 for byte-identical
// artifacts across runs. The virtual-time pipeline in internal/expt
// derives its timelines from the deterministic simulator instead.
type runTimeline struct {
	idx    atomic.Int64 // records mapped + keys sharded so far
	phase  []*timeline.Track
	steals *timeline.Sampler
	depth  *timeline.Sampler
}

// newRunTimeline builds the run's series against the installed collector,
// or returns nil when timelines are disabled. The sampler window is sized
// so a full pass over the input spans ~64 windows regardless of input
// size.
func newRunTimeline(job string, workers, numRecords int) *runTimeline {
	col := timeline.Active()
	if col == nil {
		return nil
	}
	if job == "" {
		job = "job"
	}
	window := int64(numRecords / 64)
	if window < 1 {
		window = 1
	}
	rt := &runTimeline{
		phase:  make([]*timeline.Track, workers),
		steals: col.Sampler(timeline.Meta{Name: "mr/" + job + "/steals", IndexUnit: "records", Unit: "steals"}, window, timeline.Sum),
		depth:  col.Sampler(timeline.Meta{Name: "mr/" + job + "/queue-depth", IndexUnit: "records", Unit: "tasks"}, window, timeline.Mean),
	}
	for w := range rt.phase {
		rt.phase[w] = col.Track(timeline.Meta{Name: fmt.Sprintf("mr/%s/worker/%02d/phase", job, w), IndexUnit: "records"})
		rt.phase[w].Set(0, "split")
	}
	return rt
}

// now returns the current index.
func (rt *runTimeline) now() int64 {
	if rt == nil {
		return 0
	}
	return rt.idx.Load()
}

// advance moves the index forward by n records and returns the new value.
func (rt *runTimeline) advance(n int64) int64 {
	if rt == nil {
		return 0
	}
	return rt.idx.Add(n)
}

// setPhase records worker w entering a phase at the current index.
func (rt *runTimeline) setPhase(w int, state string) {
	if rt == nil {
		return
	}
	rt.phase[w].Set(rt.idx.Load(), state)
}

// setPhaseAll records every worker entering a phase (split, merge).
func (rt *runTimeline) setPhaseAll(state string) {
	if rt == nil {
		return
	}
	idx := rt.idx.Load()
	for _, tr := range rt.phase {
		tr.Set(idx, state)
	}
}

// steal records one steal event at the current index.
func (rt *runTimeline) steal() {
	if rt == nil {
		return
	}
	rt.steals.Add(rt.idx.Load(), 1)
}

// queueDepth samples a worker's local queue size at the current index.
func (rt *runTimeline) queueDepth(size int) {
	if rt == nil {
		return
	}
	rt.depth.Add(rt.idx.Load(), float64(size))
}
