// Package mapreduce is a shared-memory MapReduce engine in the style of
// Phoenix++ (Talbot et al., MapReduce '11): a job runs through Split, Map,
// Reduce and Merge stages on a pool of worker goroutines with work stealing
// in the Map phase and per-worker combiner containers that keep the
// intermediate state cache-local.
//
// This is the executable counterpart of the platform model: the six
// benchmark applications in internal/apps run for real on this engine (and
// their workload models feed the VFI/NoC simulation in internal/sim).
//
// Typical use:
//
//	job := mapreduce.Job[string, string, int]{
//		Name:    "wordcount",
//		Map:     func(line string, emit func(string, int)) { ... },
//		Combine: func(a, b int) int { return a + b },
//	}
//	out, stats, err := mapreduce.Run(job, lines)
package mapreduce

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"
	"unsafe"

	"wivfi/internal/obs"
)

// Telemetry totals across every Run in the process. Counters are
// allocation-free atomic adds; the spans and steal events below record
// only while an obs recorder is installed (and are no-ops costing one
// atomic load otherwise), so the engine's hot paths are unchanged when
// telemetry is off.
// Metric names registered below. Declared constants (enforced by
// wivfi-lint countersafe) so every lookup site shares one authoritative
// spelling.
const (
	MetricRuns          = "mapreduce.runs"
	MetricTasks         = "mapreduce.tasks"
	MetricSteals        = "mapreduce.steals"
	MetricRecordsMapped = "mapreduce.records_mapped"
)

var (
	mrRuns    = obs.NewCounter(MetricRuns)
	mrTasks   = obs.NewCounter(MetricTasks)
	mrSteals  = obs.NewCounter(MetricSteals)
	mrRecords = obs.NewCounter(MetricRecordsMapped)
)

// Job describes one MapReduce computation over inputs of type In producing
// (K, V) pairs.
type Job[In any, K comparable, V any] struct {
	// Name labels the job in stats output.
	Name string
	// Map processes one input record and emits intermediate pairs. It must
	// be safe for concurrent invocation on distinct records.
	Map func(record In, emit func(K, V))
	// Combine merges two values of the same key. It must be associative
	// and commutative; it runs both inside the map-side combiners and in
	// the reduce phase.
	Combine func(a, b V) V
	// Workers is the number of worker goroutines; 0 means GOMAXPROCS.
	Workers int
	// TasksPerWorker controls map-task granularity: the input is split
	// into Workers*TasksPerWorker tasks (0 means 4, Phoenix-like
	// over-decomposition that gives stealing room).
	TasksPerWorker int
	// KeyLess, when non-nil, sorts the merged output by key.
	KeyLess func(a, b K) bool
	// KeyHash, when non-nil, shards keys across reduce partitions. It must
	// be safe for concurrent invocation: the map workers shard their local
	// maps in parallel. The default is allocation-free for string and
	// integer keys and falls back to hashing the key's fmt representation
	// for other types.
	KeyHash func(k K) uint32
}

// Pair is one (key, value) output record.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// Stats reports the execution profile of one run — the same phase taxonomy
// the platform simulator models.
type Stats struct {
	Workers       int
	Tasks         int
	Steals        int
	SplitTime     time.Duration
	MapTime       time.Duration
	ReduceTime    time.Duration
	MergeTime     time.Duration
	UniqueKeys    int
	RecordsMapped int64
}

// Result carries the merged output.
type Result[K comparable, V any] struct {
	// Pairs is the merged output, sorted by KeyLess when provided.
	Pairs []Pair[K, V]
}

// ToMap returns the output as a map.
func (r *Result[K, V]) ToMap() map[K]V {
	m := make(map[K]V, len(r.Pairs))
	for _, p := range r.Pairs {
		m[p.Key] = p.Value
	}
	return m
}

// taskQueue is one worker's deque of map-task indices, protected by a
// mutex so idle workers can steal from the tail.
type taskQueue struct {
	mu    sync.Mutex
	tasks []int
}

// popFront takes the next local task.
func (q *taskQueue) popFront() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.tasks) == 0 {
		return 0, false
	}
	t := q.tasks[0]
	q.tasks = q.tasks[1:]
	return t, true
}

// stealBack takes a task from the tail (victim side).
func (q *taskQueue) stealBack() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.tasks) == 0 {
		return 0, false
	}
	t := q.tasks[len(q.tasks)-1]
	q.tasks = q.tasks[:len(q.tasks)-1]
	return t, true
}

func (q *taskQueue) size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.tasks)
}

// Run executes the job over data and returns the merged output and stats.
func Run[In any, K comparable, V any](job Job[In, K, V], data []In) (*Result[K, V], Stats, error) {
	if job.Map == nil {
		return nil, Stats{}, fmt.Errorf("mapreduce: job %q has no Map function", job.Name)
	}
	if job.Combine == nil {
		return nil, Stats{}, fmt.Errorf("mapreduce: job %q has no Combine function", job.Name)
	}
	workers := job.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	tpw := job.TasksPerWorker
	if tpw <= 0 {
		tpw = 4
	}
	var stats Stats
	stats.Workers = workers
	mrRuns.Add(1)
	runSpan := obs.StartSpan("mr.run", job.Name)
	defer runSpan.End()
	// Time-resolved series (nil and allocation-free when no timeline
	// collector is installed).
	tl := newRunTimeline(job.Name, workers, len(data))

	// ---- Split: divide records into tasks and deal them round-robin ----
	splitSpan := obs.StartSpan("mr.split", job.Name)
	splitStart := time.Now() //lint:wallclock host-side phase timing for Stats.SplitTime; never feeds simulated results
	numTasks := workers * tpw
	if numTasks > len(data) {
		numTasks = len(data)
	}
	if numTasks == 0 {
		numTasks = 1
	}
	bounds := make([][2]int, numTasks)
	per := len(data) / numTasks
	rem := len(data) % numTasks
	start := 0
	for i := range bounds {
		size := per
		if i < rem {
			size++
		}
		bounds[i] = [2]int{start, start + size}
		start += size
	}
	stats.Tasks = numTasks
	queues := make([]*taskQueue, workers)
	for w := range queues {
		queues[w] = &taskQueue{}
	}
	for i := 0; i < numTasks; i++ {
		q := queues[i%workers]
		q.tasks = append(q.tasks, i)
	}
	stats.SplitTime = time.Since(splitStart) //lint:wallclock host-side phase timing; never feeds simulated results
	splitSpan.End()
	mrTasks.Add(int64(numTasks))
	// One work item per task created, so the split phase has nonzero
	// width on the index axis before map begins.
	tl.advance(int64(numTasks))

	// ---- Map: work-stealing workers with per-worker combiners ----
	mapSpan := obs.StartSpan("mr.map", job.Name)
	mapStart := time.Now() //lint:wallclock host-side phase timing for Stats.MapTime; never feeds simulated results
	locals := make([]map[K]V, workers)
	steals := make([]int, workers)
	records := make([]int64, workers)
	// One trace track per worker goroutine ("mr-worker-03"); track 0 when
	// telemetry is off, where every span/instant call is a no-op.
	tracks := workerTracks(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wspan := obs.StartSpanOn(tracks[w], "mr.map.worker", job.Name)
			defer wspan.End()
			tl.setPhase(w, "map")
			local := make(map[K]V)
			emit := func(k K, v V) {
				if old, ok := local[k]; ok {
					local[k] = job.Combine(old, v)
				} else {
					local[k] = v
				}
			}
			for {
				idx, ok := queues[w].popFront()
				if !ok {
					// steal from the most loaded victim
					victim, best := -1, 0
					for v := range queues {
						if v == w {
							continue
						}
						if s := queues[v].size(); s > best {
							victim, best = v, s
						}
					}
					if victim < 0 {
						break
					}
					idx, ok = queues[victim].stealBack()
					if !ok {
						continue // raced; rescan
					}
					steals[w]++
					obs.Instant(tracks[w], "mr.steal", job.Name)
					tl.steal()
				}
				tl.queueDepth(queues[w].size())
				tspan := obs.StartSpanOn(tracks[w], "mr.task", job.Name)
				lo, hi := bounds[idx][0], bounds[idx][1]
				for r := lo; r < hi; r++ {
					job.Map(data[r], emit)
					records[w]++
				}
				tspan.End()
				tl.advance(int64(hi - lo))
			}
			locals[w] = local
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		stats.Steals += steals[w]
		stats.RecordsMapped += records[w]
	}
	stats.MapTime = time.Since(mapStart) //lint:wallclock host-side phase timing; never feeds simulated results
	mapSpan.End()
	mrSteals.Add(int64(stats.Steals))
	mrRecords.Add(stats.RecordsMapped)

	// ---- Reduce: merge the per-worker maps in parallel partitions ----
	reduceSpan := obs.StartSpan("mr.reduce", job.Name)
	reduceStart := time.Now() //lint:wallclock host-side phase timing for Stats.ReduceTime; never feeds simulated results
	hash := job.KeyHash
	if hash == nil {
		hash = defaultKeyHash[K]()
	}
	// Pass 1: each worker shards its own local map, hashing every key
	// exactly once (reducers formerly re-hashed every key of every local
	// map, W× redundant work).
	sharded := make([][]map[K]V, workers)
	var sg sync.WaitGroup
	for w := 0; w < workers; w++ {
		sg.Add(1)
		go func(w int) {
			defer sg.Done()
			sspan := obs.StartSpanOn(tracks[w], "mr.reduce.shard", job.Name)
			defer sspan.End()
			tl.setPhase(w, "reduce")
			shards := make([]map[K]V, workers)
			for k, v := range locals[w] {
				p := int(hash(k)) % workers
				if shards[p] == nil {
					shards[p] = make(map[K]V)
				}
				shards[p][k] = v
			}
			sharded[w] = shards
			tl.advance(int64(len(locals[w])))
		}(w)
	}
	sg.Wait()
	// Pass 2: reducer p merges shard p of every worker, no hashing needed.
	partitions := make([]map[K]V, workers)
	var rg sync.WaitGroup
	for p := 0; p < workers; p++ {
		rg.Add(1)
		go func(p int) {
			defer rg.Done()
			pspan := obs.StartSpanOn(tracks[p], "mr.reduce.merge", job.Name)
			defer pspan.End()
			part := make(map[K]V)
			for w := 0; w < workers; w++ {
				for k, v := range sharded[w][p] {
					if old, ok := part[k]; ok {
						part[k] = job.Combine(old, v)
					} else {
						part[k] = v
					}
				}
			}
			partitions[p] = part
		}(p)
	}
	rg.Wait()
	stats.ReduceTime = time.Since(reduceStart) //lint:wallclock host-side phase timing; never feeds simulated results
	reduceSpan.End()

	// ---- Merge: concatenate partitions and sort ----
	mergeSpan := obs.StartSpan("mr.merge", job.Name)
	mergeStart := time.Now() //lint:wallclock host-side phase timing for Stats.MergeTime; never feeds simulated results
	tl.setPhaseAll("merge")
	var total int
	for _, part := range partitions {
		total += len(part)
	}
	pairs := make([]Pair[K, V], 0, total)
	for _, part := range partitions {
		for k, v := range part {
			pairs = append(pairs, Pair[K, V]{Key: k, Value: v})
		}
	}
	if job.KeyLess != nil {
		sort.Slice(pairs, func(i, j int) bool { return job.KeyLess(pairs[i].Key, pairs[j].Key) })
	}
	stats.MergeTime = time.Since(mergeStart) //lint:wallclock host-side phase timing; never feeds simulated results
	mergeSpan.End()
	tl.advance(int64(len(pairs)))
	tl.setPhaseAll("done")
	stats.UniqueKeys = len(pairs)
	return &Result[K, V]{Pairs: pairs}, stats, nil
}

// workerTracks returns the per-worker trace track ids ("mr-worker-03").
// With telemetry disabled it returns a shared all-zero slice, allocating
// nothing per run beyond the cached slice growth.
func workerTracks(workers int) []int32 {
	if !obs.Enabled() {
		return zeroTracks(workers)
	}
	tracks := make([]int32, workers)
	for w := range tracks {
		tracks[w] = obs.TrackFor(fmt.Sprintf("mr-worker-%02d", w))
	}
	return tracks
}

// zeroTrackSlice is a grow-only cache of zeros for the disabled path.
var zeroTrackSlice struct {
	mu sync.Mutex
	s  []int32
}

func zeroTracks(n int) []int32 {
	zeroTrackSlice.mu.Lock()
	defer zeroTrackSlice.mu.Unlock()
	if len(zeroTrackSlice.s) < n {
		zeroTrackSlice.s = make([]int32, n)
	}
	return zeroTrackSlice.s[:n]
}

// defaultKeyHash selects a shard hash for the key type: FNV-1a directly on
// string keys, a SplitMix64-style mix on integer keys (both allocation
// free), and FNV-1a over the fmt representation as the fallback for
// everything else. Partitioning only needs determinism within one run, so
// the integer path is free to differ from the string form of the number.
func defaultKeyHash[K comparable]() func(K) uint32 {
	var zero K
	switch any(zero).(type) {
	case string:
		return func(k K) uint32 { return fnvHash(*(*string)(keyPtr(&k))) }
	case int:
		return func(k K) uint32 { return mix64(uint64(*(*int)(keyPtr(&k)))) }
	case int8:
		return func(k K) uint32 { return mix64(uint64(*(*int8)(keyPtr(&k)))) }
	case int16:
		return func(k K) uint32 { return mix64(uint64(*(*int16)(keyPtr(&k)))) }
	case int32:
		return func(k K) uint32 { return mix64(uint64(*(*int32)(keyPtr(&k)))) }
	case int64:
		return func(k K) uint32 { return mix64(uint64(*(*int64)(keyPtr(&k)))) }
	case uint:
		return func(k K) uint32 { return mix64(uint64(*(*uint)(keyPtr(&k)))) }
	case uint8:
		return func(k K) uint32 { return mix64(uint64(*(*uint8)(keyPtr(&k)))) }
	case uint16:
		return func(k K) uint32 { return mix64(uint64(*(*uint16)(keyPtr(&k)))) }
	case uint32:
		return func(k K) uint32 { return mix64(uint64(*(*uint32)(keyPtr(&k)))) }
	case uint64:
		return func(k K) uint32 { return mix64(*(*uint64)(keyPtr(&k))) }
	case uintptr:
		return func(k K) uint32 { return mix64(uint64(*(*uintptr)(keyPtr(&k)))) }
	default:
		return func(k K) uint32 { return fnvHash(fmt.Sprintf("%v", k)) }
	}
}

// keyPtr reinterprets a *K whose dynamic type was already established by
// defaultKeyHash's type switch; unsafe.Pointer avoids boxing the key into
// an interface (and thus allocating) on every hash call.
func keyPtr[K comparable](k *K) unsafe.Pointer { return unsafe.Pointer(k) }

// mix64 is the SplitMix64 finalizer, folded to 32 bits.
func mix64(x uint64) uint32 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return uint32(x ^ (x >> 32))
}

// fnvHash is a small FNV-1a over the key's string form, used only to shard
// reduce partitions deterministically.
func fnvHash(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
