package mapreduce

import (
	"fmt"
	"strings"
	"testing"
)

func wordCountJob(workers int) Job[string, string, int] {
	return Job[string, string, int]{
		Name: "wordcount",
		Map: func(line string, emit func(string, int)) {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
		},
		Combine: func(a, b int) int { return a + b },
		Workers: workers,
		KeyLess: func(a, b string) bool { return a < b },
	}
}

func TestWordCountBasic(t *testing.T) {
	lines := []string{
		"the quick brown fox",
		"the lazy dog",
		"the fox",
	}
	res, stats, err := Run(wordCountJob(4), lines)
	if err != nil {
		t.Fatal(err)
	}
	m := res.ToMap()
	want := map[string]int{"the": 3, "quick": 1, "brown": 1, "fox": 2, "lazy": 1, "dog": 1}
	if len(m) != len(want) {
		t.Fatalf("got %d keys, want %d: %v", len(m), len(want), m)
	}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("count[%q] = %d, want %d", k, m[k], v)
		}
	}
	if stats.UniqueKeys != 6 {
		t.Errorf("UniqueKeys = %d", stats.UniqueKeys)
	}
	if stats.RecordsMaped != 3 {
		t.Errorf("RecordsMaped = %d", stats.RecordsMaped)
	}
	// sorted output
	for i := 1; i < len(res.Pairs); i++ {
		if res.Pairs[i-1].Key >= res.Pairs[i].Key {
			t.Fatal("output not sorted")
		}
	}
}

func TestResultIndependentOfWorkerCount(t *testing.T) {
	var lines []string
	for i := 0; i < 500; i++ {
		lines = append(lines, fmt.Sprintf("w%d w%d shared", i%37, i%11))
	}
	ref, _, err := Run(wordCountJob(1), lines)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8, 16} {
		got, _, err := Run(wordCountJob(workers), lines)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Pairs) != len(ref.Pairs) {
			t.Fatalf("workers=%d: %d keys vs %d", workers, len(got.Pairs), len(ref.Pairs))
		}
		gm, rm := got.ToMap(), ref.ToMap()
		for k, v := range rm {
			if gm[k] != v {
				t.Fatalf("workers=%d: key %q = %d, want %d", workers, k, gm[k], v)
			}
		}
	}
}

func TestEmptyInput(t *testing.T) {
	res, stats, err := Run(wordCountJob(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 0 {
		t.Errorf("empty input produced %d pairs", len(res.Pairs))
	}
	if stats.RecordsMaped != 0 {
		t.Errorf("RecordsMaped = %d", stats.RecordsMaped)
	}
}

func TestMissingFunctionsRejected(t *testing.T) {
	if _, _, err := Run(Job[int, int, int]{Combine: func(a, b int) int { return a + b }}, []int{1}); err == nil {
		t.Error("job without Map accepted")
	}
	if _, _, err := Run(Job[int, int, int]{Map: func(int, func(int, int)) {}}, []int{1}); err == nil {
		t.Error("job without Combine accepted")
	}
}

func TestNumericAggregation(t *testing.T) {
	// histogram of bytes mod 8 using int keys and max-combiner semantics
	data := make([]int, 1000)
	for i := range data {
		data[i] = i
	}
	job := Job[int, int, int]{
		Name: "hist",
		Map: func(x int, emit func(int, int)) {
			emit(x%8, 1)
		},
		Combine: func(a, b int) int { return a + b },
		Workers: 8,
		KeyLess: func(a, b int) bool { return a < b },
	}
	res, _, err := Run(job, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 8 {
		t.Fatalf("%d buckets", len(res.Pairs))
	}
	for _, p := range res.Pairs {
		if p.Value != 125 {
			t.Errorf("bucket %d = %d, want 125", p.Key, p.Value)
		}
	}
}

func TestStealingHappensOnSkewedTasks(t *testing.T) {
	// With tasks dealt round-robin and heavily skewed record costs, some
	// workers finish early and must steal. We can't force OS scheduling,
	// but across a large run at least one steal is overwhelmingly likely;
	// assert stats are self-consistent rather than a specific count.
	var lines []string
	for i := 0; i < 2000; i++ {
		if i%10 == 0 {
			lines = append(lines, strings.Repeat("hot ", 200))
		} else {
			lines = append(lines, "cold")
		}
	}
	res, stats, err := Run(wordCountJob(8), lines)
	if err != nil {
		t.Fatal(err)
	}
	m := res.ToMap()
	if m["hot"] != 200*200 {
		t.Errorf("hot = %d, want 40000", m["hot"])
	}
	if m["cold"] != 1800 {
		t.Errorf("cold = %d, want 1800", m["cold"])
	}
	if stats.Steals < 0 || stats.Steals > stats.Tasks {
		t.Errorf("implausible steal count %d for %d tasks", stats.Steals, stats.Tasks)
	}
	if stats.Tasks != 8*4 {
		t.Errorf("Tasks = %d, want 32", stats.Tasks)
	}
}

func TestTasksPerWorkerOverride(t *testing.T) {
	job := wordCountJob(2)
	job.TasksPerWorker = 10
	_, stats, err := Run(job, make([]string, 100))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tasks != 20 {
		t.Errorf("Tasks = %d, want 20", stats.Tasks)
	}
}

func TestTasksCappedByRecords(t *testing.T) {
	_, stats, err := Run(wordCountJob(8), []string{"a b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tasks > 2 {
		t.Errorf("Tasks = %d for 2 records", stats.Tasks)
	}
}

func TestUnsortedWhenNoKeyLess(t *testing.T) {
	job := wordCountJob(2)
	job.KeyLess = nil
	res, _, err := Run(job, []string{"b a c a"})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.ToMap()["a"]; got != 2 {
		t.Errorf("a = %d", got)
	}
}

func TestStructuredValues(t *testing.T) {
	// linear-regression style aggregation with struct values
	type acc struct {
		SX, SY, SXX, SXY float64
		N                int
	}
	type pt struct{ X, Y float64 }
	pts := []pt{{1, 2}, {2, 4}, {3, 6}, {4, 8}}
	job := Job[pt, int, acc]{
		Name: "lr",
		Map: func(p pt, emit func(int, acc)) {
			emit(0, acc{SX: p.X, SY: p.Y, SXX: p.X * p.X, SXY: p.X * p.Y, N: 1})
		},
		Combine: func(a, b acc) acc {
			return acc{a.SX + b.SX, a.SY + b.SY, a.SXX + b.SXX, a.SXY + b.SXY, a.N + b.N}
		},
		Workers: 3,
	}
	res, _, err := Run(job, pts)
	if err != nil {
		t.Fatal(err)
	}
	a := res.ToMap()[0]
	if a.N != 4 || a.SX != 10 || a.SY != 20 {
		t.Errorf("acc = %+v", a)
	}
	// slope = (n*SXY - SX*SY) / (n*SXX - SX^2) = (4*60-200)/(4*30-100) = 2
	slope := (float64(a.N)*a.SXY - a.SX*a.SY) / (float64(a.N)*a.SXX - a.SX*a.SX)
	if slope != 2 {
		t.Errorf("slope = %v, want 2", slope)
	}
}

func TestCustomKeyHash(t *testing.T) {
	job := wordCountJob(4)
	calls := 0
	job.KeyHash = func(k string) uint32 {
		calls++
		var h uint32 = 5381
		for i := 0; i < len(k); i++ {
			h = h*33 + uint32(k[i])
		}
		return h
	}
	res, _, err := Run(job, []string{"a b c a", "b a"})
	if err != nil {
		t.Fatal(err)
	}
	m := res.ToMap()
	if m["a"] != 3 || m["b"] != 2 || m["c"] != 1 {
		t.Errorf("counts wrong with custom hash: %v", m)
	}
	if calls == 0 {
		t.Error("custom hash never invoked")
	}
}

func TestCustomHashMatchesDefaultResults(t *testing.T) {
	var lines []string
	for i := 0; i < 300; i++ {
		lines = append(lines, fmt.Sprintf("k%d k%d", i%13, i%7))
	}
	def, _, err := Run(wordCountJob(6), lines)
	if err != nil {
		t.Fatal(err)
	}
	job := wordCountJob(6)
	job.KeyHash = func(k string) uint32 { return uint32(len(k)) } // terrible but legal
	custom, _, err := Run(job, lines)
	if err != nil {
		t.Fatal(err)
	}
	dm, cm := def.ToMap(), custom.ToMap()
	if len(dm) != len(cm) {
		t.Fatalf("key counts differ: %d vs %d", len(dm), len(cm))
	}
	for k, v := range dm {
		if cm[k] != v {
			t.Errorf("key %q: %d vs %d", k, cm[k], v)
		}
	}
}
