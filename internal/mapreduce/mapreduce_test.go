package mapreduce

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func wordCountJob(workers int) Job[string, string, int] {
	return Job[string, string, int]{
		Name: "wordcount",
		Map: func(line string, emit func(string, int)) {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
		},
		Combine: func(a, b int) int { return a + b },
		Workers: workers,
		KeyLess: func(a, b string) bool { return a < b },
	}
}

func TestWordCountBasic(t *testing.T) {
	lines := []string{
		"the quick brown fox",
		"the lazy dog",
		"the fox",
	}
	res, stats, err := Run(wordCountJob(4), lines)
	if err != nil {
		t.Fatal(err)
	}
	m := res.ToMap()
	want := map[string]int{"the": 3, "quick": 1, "brown": 1, "fox": 2, "lazy": 1, "dog": 1}
	if len(m) != len(want) {
		t.Fatalf("got %d keys, want %d: %v", len(m), len(want), m)
	}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("count[%q] = %d, want %d", k, m[k], v)
		}
	}
	if stats.UniqueKeys != 6 {
		t.Errorf("UniqueKeys = %d", stats.UniqueKeys)
	}
	if stats.RecordsMapped != 3 {
		t.Errorf("RecordsMapped = %d", stats.RecordsMapped)
	}
	// sorted output
	for i := 1; i < len(res.Pairs); i++ {
		if res.Pairs[i-1].Key >= res.Pairs[i].Key {
			t.Fatal("output not sorted")
		}
	}
}

func TestResultIndependentOfWorkerCount(t *testing.T) {
	var lines []string
	for i := 0; i < 500; i++ {
		lines = append(lines, fmt.Sprintf("w%d w%d shared", i%37, i%11))
	}
	ref, _, err := Run(wordCountJob(1), lines)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8, 16} {
		got, _, err := Run(wordCountJob(workers), lines)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Pairs) != len(ref.Pairs) {
			t.Fatalf("workers=%d: %d keys vs %d", workers, len(got.Pairs), len(ref.Pairs))
		}
		gm, rm := got.ToMap(), ref.ToMap()
		for k, v := range rm {
			if gm[k] != v {
				t.Fatalf("workers=%d: key %q = %d, want %d", workers, k, gm[k], v)
			}
		}
	}
}

func TestEmptyInput(t *testing.T) {
	res, stats, err := Run(wordCountJob(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 0 {
		t.Errorf("empty input produced %d pairs", len(res.Pairs))
	}
	if stats.RecordsMapped != 0 {
		t.Errorf("RecordsMapped = %d", stats.RecordsMapped)
	}
}

func TestMissingFunctionsRejected(t *testing.T) {
	if _, _, err := Run(Job[int, int, int]{Combine: func(a, b int) int { return a + b }}, []int{1}); err == nil {
		t.Error("job without Map accepted")
	}
	if _, _, err := Run(Job[int, int, int]{Map: func(int, func(int, int)) {}}, []int{1}); err == nil {
		t.Error("job without Combine accepted")
	}
}

func TestNumericAggregation(t *testing.T) {
	// histogram of bytes mod 8 using int keys and max-combiner semantics
	data := make([]int, 1000)
	for i := range data {
		data[i] = i
	}
	job := Job[int, int, int]{
		Name: "hist",
		Map: func(x int, emit func(int, int)) {
			emit(x%8, 1)
		},
		Combine: func(a, b int) int { return a + b },
		Workers: 8,
		KeyLess: func(a, b int) bool { return a < b },
	}
	res, _, err := Run(job, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 8 {
		t.Fatalf("%d buckets", len(res.Pairs))
	}
	for _, p := range res.Pairs {
		if p.Value != 125 {
			t.Errorf("bucket %d = %d, want 125", p.Key, p.Value)
		}
	}
}

func TestStealingHappensOnSkewedTasks(t *testing.T) {
	// With tasks dealt round-robin and heavily skewed record costs, some
	// workers finish early and must steal. We can't force OS scheduling,
	// but across a large run at least one steal is overwhelmingly likely;
	// assert stats are self-consistent rather than a specific count.
	var lines []string
	for i := 0; i < 2000; i++ {
		if i%10 == 0 {
			lines = append(lines, strings.Repeat("hot ", 200))
		} else {
			lines = append(lines, "cold")
		}
	}
	res, stats, err := Run(wordCountJob(8), lines)
	if err != nil {
		t.Fatal(err)
	}
	m := res.ToMap()
	if m["hot"] != 200*200 {
		t.Errorf("hot = %d, want 40000", m["hot"])
	}
	if m["cold"] != 1800 {
		t.Errorf("cold = %d, want 1800", m["cold"])
	}
	if stats.Steals < 0 || stats.Steals > stats.Tasks {
		t.Errorf("implausible steal count %d for %d tasks", stats.Steals, stats.Tasks)
	}
	if stats.Tasks != 8*4 {
		t.Errorf("Tasks = %d, want 32", stats.Tasks)
	}
}

func TestTasksPerWorkerOverride(t *testing.T) {
	job := wordCountJob(2)
	job.TasksPerWorker = 10
	_, stats, err := Run(job, make([]string, 100))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tasks != 20 {
		t.Errorf("Tasks = %d, want 20", stats.Tasks)
	}
}

func TestTasksCappedByRecords(t *testing.T) {
	_, stats, err := Run(wordCountJob(8), []string{"a b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tasks > 2 {
		t.Errorf("Tasks = %d for 2 records", stats.Tasks)
	}
}

func TestUnsortedWhenNoKeyLess(t *testing.T) {
	job := wordCountJob(2)
	job.KeyLess = nil
	res, _, err := Run(job, []string{"b a c a"})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.ToMap()["a"]; got != 2 {
		t.Errorf("a = %d", got)
	}
}

func TestStructuredValues(t *testing.T) {
	// linear-regression style aggregation with struct values
	type acc struct {
		SX, SY, SXX, SXY float64
		N                int
	}
	type pt struct{ X, Y float64 }
	pts := []pt{{1, 2}, {2, 4}, {3, 6}, {4, 8}}
	job := Job[pt, int, acc]{
		Name: "lr",
		Map: func(p pt, emit func(int, acc)) {
			emit(0, acc{SX: p.X, SY: p.Y, SXX: p.X * p.X, SXY: p.X * p.Y, N: 1})
		},
		Combine: func(a, b acc) acc {
			return acc{a.SX + b.SX, a.SY + b.SY, a.SXX + b.SXX, a.SXY + b.SXY, a.N + b.N}
		},
		Workers: 3,
	}
	res, _, err := Run(job, pts)
	if err != nil {
		t.Fatal(err)
	}
	a := res.ToMap()[0]
	if a.N != 4 || a.SX != 10 || a.SY != 20 {
		t.Errorf("acc = %+v", a)
	}
	// slope = (n*SXY - SX*SY) / (n*SXX - SX^2) = (4*60-200)/(4*30-100) = 2
	slope := (float64(a.N)*a.SXY - a.SX*a.SY) / (float64(a.N)*a.SXX - a.SX*a.SX)
	if slope != 2 {
		t.Errorf("slope = %v, want 2", slope)
	}
}

func TestCustomKeyHash(t *testing.T) {
	job := wordCountJob(4)
	var calls atomic.Int64 // KeyHash runs concurrently across shard workers
	job.KeyHash = func(k string) uint32 {
		calls.Add(1)
		var h uint32 = 5381
		for i := 0; i < len(k); i++ {
			h = h*33 + uint32(k[i])
		}
		return h
	}
	res, _, err := Run(job, []string{"a b c a", "b a"})
	if err != nil {
		t.Fatal(err)
	}
	m := res.ToMap()
	if m["a"] != 3 || m["b"] != 2 || m["c"] != 1 {
		t.Errorf("counts wrong with custom hash: %v", m)
	}
	if calls.Load() == 0 {
		t.Error("custom hash never invoked")
	}
}

func TestCustomHashMatchesDefaultResults(t *testing.T) {
	var lines []string
	for i := 0; i < 300; i++ {
		lines = append(lines, fmt.Sprintf("k%d k%d", i%13, i%7))
	}
	def, _, err := Run(wordCountJob(6), lines)
	if err != nil {
		t.Fatal(err)
	}
	job := wordCountJob(6)
	job.KeyHash = func(k string) uint32 { return uint32(len(k)) } // terrible but legal
	custom, _, err := Run(job, lines)
	if err != nil {
		t.Fatal(err)
	}
	dm, cm := def.ToMap(), custom.ToMap()
	if len(dm) != len(cm) {
		t.Fatalf("key counts differ: %d vs %d", len(dm), len(cm))
	}
	for k, v := range dm {
		if cm[k] != v {
			t.Errorf("key %q: %d vs %d", k, cm[k], v)
		}
	}
}

// TestDefaultHashKindsAgree exercises the specialized default hashes: every
// supported key type must produce correct merged output (the hash only
// affects sharding, never values).
func TestDefaultHashKindsAgree(t *testing.T) {
	intJob := Job[int, int64, int]{
		Name:    "i64",
		Map:     func(x int, emit func(int64, int)) { emit(int64(x%101), 1) },
		Combine: func(a, b int) int { return a + b },
		Workers: 4,
		KeyLess: func(a, b int64) bool { return a < b },
	}
	data := make([]int, 1010)
	for i := range data {
		data[i] = i
	}
	res, _, err := Run(intJob, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 101 {
		t.Fatalf("%d keys, want 101", len(res.Pairs))
	}
	for _, p := range res.Pairs {
		if p.Value != 10 {
			t.Errorf("key %d = %d, want 10", p.Key, p.Value)
		}
	}
	// struct keys exercise the fmt fallback
	type ck struct{ A, B int }
	structJob := Job[int, ck, int]{
		Name:    "struct",
		Map:     func(x int, emit func(ck, int)) { emit(ck{x % 7, x % 3}, 1) },
		Combine: func(a, b int) int { return a + b },
		Workers: 4,
	}
	sres, _, err := Run(structJob, data)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range sres.Pairs {
		total += p.Value
	}
	if total != len(data) {
		t.Errorf("struct-key counts sum to %d, want %d", total, len(data))
	}
}

// TestEachKeyHashedOncePerLocalMap is the regression test for the W×
// redundant hashing bug: with W workers the hash used to run W times per
// (local map, key); now it must run exactly once.
func TestEachKeyHashedOncePerLocalMap(t *testing.T) {
	const workers = 8
	var calls atomic.Int64
	job := Job[int, int, int]{
		Name:    "hashcount",
		Map:     func(x int, emit func(int, int)) { emit(x, 1) },
		Combine: func(a, b int) int { return a + b },
		Workers: workers,
		KeyHash: func(k int) uint32 {
			calls.Add(1)
			return uint32(k)
		},
	}
	data := make([]int, 4000) // all keys unique
	for i := range data {
		data[i] = i
	}
	if _, _, err := Run(job, data); err != nil {
		t.Fatal(err)
	}
	// Unique keys mean every key lives in exactly one local map, so the
	// total must be exactly len(data); the old code did W times that.
	if got := calls.Load(); got != int64(len(data)) {
		t.Errorf("hash called %d times for %d unique keys (pre-fix: %d)",
			got, len(data), workers*len(data))
	}
}

// TestConcurrentRuns drives many whole MapReduce jobs in parallel; run
// under -race it guards the engine's internal synchronization.
func TestConcurrentRuns(t *testing.T) {
	var lines []string
	for i := 0; i < 400; i++ {
		lines = append(lines, fmt.Sprintf("w%d w%d shared", i%37, i%11))
	}
	ref, _, err := Run(wordCountJob(1), lines)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.ToMap()
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, _, err := Run(wordCountJob(4), lines)
			if err != nil {
				errs[g] = err
				return
			}
			m := res.ToMap()
			if len(m) != len(want) {
				errs[g] = fmt.Errorf("goroutine %d: %d keys, want %d", g, len(m), len(want))
				return
			}
			for k, v := range want {
				if m[k] != v {
					errs[g] = fmt.Errorf("goroutine %d: key %q = %d, want %d", g, k, m[k], v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}
