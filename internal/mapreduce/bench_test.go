package mapreduce

import (
	"fmt"
	"testing"
)

// benchLines builds a corpus with a large unique-key population so the
// reduce phase (partitioning + merging) dominates over the map phase.
func benchLines(n int) []string {
	lines := make([]string, n)
	for i := range lines {
		lines[i] = fmt.Sprintf("u%d u%d u%d shared", i, i%1000, i%97)
	}
	return lines
}

// BenchmarkReduceStringKeys exercises the full Run with string keys and the
// default hash: before the single-pass sharding fix every reducer re-hashed
// every key of every local map through fmt.Sprintf.
func BenchmarkReduceStringKeys(b *testing.B) {
	lines := benchLines(20000)
	job := wordCountJob(8)
	job.KeyLess = nil // isolate map+reduce; merge-sort is not under test
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Run(job, lines); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReduceIntKeys is the same shape with integer keys, where the
// default hash formerly allocated a decimal string per call.
func BenchmarkReduceIntKeys(b *testing.B) {
	data := make([]int, 20000)
	for i := range data {
		data[i] = i
	}
	job := Job[int, int, int]{
		Name:    "ihist",
		Map:     func(x int, emit func(int, int)) { emit(x, 1); emit(x%1024, 1) },
		Combine: func(a, b int) int { return a + b },
		Workers: 8,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Run(job, data); err != nil {
			b.Fatal(err)
		}
	}
}
