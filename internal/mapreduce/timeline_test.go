package mapreduce

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"wivfi/internal/timeline"
)

func wcJob(workers int) (Job[string, string, int], []string) {
	job := Job[string, string, int]{
		Name: "wc",
		Map: func(line string, emit func(string, int)) {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
		},
		Combine: func(a, b int) int { return a + b },
		Workers: workers,
		KeyLess: func(a, b string) bool { return a < b },
	}
	lines := make([]string, 300)
	for i := range lines {
		lines[i] = "the quick brown fox jumps over the lazy dog"
	}
	return job, lines
}

func TestRunEmitsTimelines(t *testing.T) {
	col := timeline.NewCollector()
	timeline.Install(col)
	defer timeline.Install(nil)

	job, lines := wcJob(2)
	_, stats, err := Run(job, lines)
	if err != nil {
		t.Fatal(err)
	}
	set := col.Export("test")
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	// Per-worker phase tracks covering split..done.
	tracks := set.Prefix("mr/wc/worker/")
	if len(tracks) != 2 {
		t.Fatalf("worker tracks = %d, want 2", len(tracks))
	}
	// Every track starts in split and ends done; a worker that happens to
	// process nothing can lose its zero-width middle phases to overwrite,
	// but across the workers all phases must appear.
	seen := map[string]bool{}
	for _, tr := range tracks {
		if tr.Kind != timeline.KindTrack {
			t.Fatalf("%s kind = %s", tr.Name, tr.Kind)
		}
		if tr.Points[0].Index != 0 || tr.Points[0].State != "split" {
			t.Errorf("%s does not start in split: %v", tr.Name, tr.Points[0])
		}
		if last := tr.Points[len(tr.Points)-1]; last.State != "done" {
			t.Errorf("%s does not end done: %v", tr.Name, last)
		}
		for _, p := range tr.Points {
			seen[p.State] = true
		}
	}
	for _, want := range []string{"split", "map", "reduce", "merge", "done"} {
		if !seen[want] {
			t.Errorf("no worker track shows state %q", want)
		}
	}
	// Queue-depth series exists; steal series mass equals Stats.Steals.
	if set.Lookup("mr/wc/queue-depth") == nil {
		t.Fatal("no queue-depth series")
	}
	st := set.Lookup("mr/wc/steals")
	if st == nil {
		t.Fatal("no steals series")
	}
	var mass float64
	for _, v := range st.Values {
		mass += v
	}
	if int(mass) != stats.Steals {
		t.Fatalf("steal series mass = %v, Stats.Steals = %d", mass, stats.Steals)
	}
}

func TestTimelineDeterministicSingleWorker(t *testing.T) {
	run := func() []byte {
		col := timeline.NewCollector()
		timeline.Install(col)
		defer timeline.Install(nil)
		job, lines := wcJob(1)
		if _, _, err := Run(job, lines); err != nil {
			t.Fatal(err)
		}
		blob, _ := json.Marshal(col.Export("test"))
		return blob
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("single-worker timelines differ across runs")
	}
}

func TestRunDisabledTimelineNoSeries(t *testing.T) {
	timeline.Install(nil)
	job, lines := wcJob(2)
	before, statsBefore, err := Run(job, lines)
	if err != nil {
		t.Fatal(err)
	}
	// Enabling timelines must not change results or stats totals.
	col := timeline.NewCollector()
	timeline.Install(col)
	defer timeline.Install(nil)
	after, statsAfter, err := Run(job, lines)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Pairs) != len(after.Pairs) || statsBefore.RecordsMapped != statsAfter.RecordsMapped {
		t.Fatal("timeline collection changed results")
	}
}
