package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// PromName reports how a registered metric name appears on /metrics, so
// scrapers (the load generator, the CI smoke job) derive sample names from
// the same declared constants the daemon registers.
func PromName(name string) string { return promName(name) }

// promName sanitizes a registered metric name into a legal Prometheus
// identifier and namespaces it: "sim.pool.queue-wait" ->
// "wivfi_sim_pool_queue_wait".
func promName(name string) string {
	var b strings.Builder
	b.WriteString("wivfi_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// HistogramBucket is one bucket of a histogram snapshot: Count samples
// with values <= UpperBound. Buckets must be in increasing UpperBound
// order and counts are per-bucket (the exporter accumulates them into the
// cumulative form the Prometheus histogram text format requires).
type HistogramBucket struct {
	UpperBound int64
	Count      int64
}

// HistogramSnapshot is the point-in-time state of a histogram as the
// exporter needs it. It deliberately mirrors timeline.HistogramData's
// log-spaced buckets without importing the package (timeline depends on
// obs, not the reverse); producers adapt their own bucket layout.
type HistogramSnapshot struct {
	Count   int64
	Sum     int64
	Buckets []HistogramBucket
}

// histograms holds the registered histogram providers by name.
var histograms struct {
	mu   sync.Mutex
	snap map[string]func() HistogramSnapshot
}

// RegisterHistogram publishes a histogram on /metrics under name (same
// dotted namespace as counters and gauges; the snapshot function is called
// on every scrape). Re-registering a name replaces the provider, so tests
// that rebuild a server keep one live family per name.
func RegisterHistogram(name string, snap func() HistogramSnapshot) {
	histograms.mu.Lock()
	if histograms.snap == nil {
		histograms.snap = map[string]func() HistogramSnapshot{}
	}
	histograms.snap[name] = snap
	histograms.mu.Unlock()
}

// histogramSnapshots copies the provider map so snapshot functions run
// outside the registry lock.
func histogramSnapshots() map[string]func() HistogramSnapshot {
	histograms.mu.Lock()
	defer histograms.mu.Unlock()
	out := make(map[string]func() HistogramSnapshot, len(histograms.snap))
	for name, fn := range histograms.snap {
		out[name] = fn
	}
	return out
}

// WritePrometheus renders every registered counter, gauge and histogram in
// the Prometheus text exposition format (one `counter` family per Counter,
// a `gauge` family plus a `_max` high-water family per Gauge, a cumulative
// `histogram` family with _bucket/_sum/_count per registered histogram).
// Output is sorted by family name, so it is deterministic for tests and
// diffable between scrapes.
func WritePrometheus(w io.Writer) {
	type family struct {
		name, kind, help string
		value            int64
		hist             *HistogramSnapshot
	}
	var fams []family
	for name, v := range CounterTotals() {
		fams = append(fams, family{name: promName(name), kind: "counter", help: "Total of the " + name + " counter.", value: v})
	}
	for name, g := range GaugeReadings() {
		fams = append(fams, family{name: promName(name), kind: "gauge", help: "Current level of the " + name + " gauge.", value: g.Value})
		fams = append(fams, family{name: promName(name) + "_max", kind: "gauge", help: "High-water mark of the " + name + " gauge.", value: g.Max})
	}
	for name, snap := range histogramSnapshots() {
		h := snap()
		fams = append(fams, family{name: promName(name), kind: "histogram", help: "Distribution of " + name + ".", hist: &h})
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		if f.hist == nil {
			fmt.Fprintf(w, "%s %d\n", f.name, f.value)
			continue
		}
		var cum int64
		for _, b := range f.hist.Buckets {
			cum += b.Count
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", f.name, b.UpperBound, cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", f.name, f.hist.Count)
		fmt.Fprintf(w, "%s_sum %d\n", f.name, f.hist.Sum)
		fmt.Fprintf(w, "%s_count %d\n", f.name, f.hist.Count)
	}
}

// promHandler serves WritePrometheus as the /metrics endpoint.
func promHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WritePrometheus(w)
}
