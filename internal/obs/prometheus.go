package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// promName sanitizes a registered metric name into a legal Prometheus
// identifier and namespaces it: "sim.pool.queue-wait" ->
// "wivfi_sim_pool_queue_wait".
func promName(name string) string {
	var b strings.Builder
	b.WriteString("wivfi_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders every registered counter and gauge in the
// Prometheus text exposition format (one `counter` family per Counter, a
// `gauge` family plus a `_max` high-water family per Gauge). Output is
// sorted by family name, so it is deterministic for tests and diffable
// between scrapes.
func WritePrometheus(w io.Writer) {
	type family struct {
		name, kind, help string
		value            int64
	}
	var fams []family
	for name, v := range CounterTotals() {
		fams = append(fams, family{promName(name), "counter", "Total of the " + name + " counter.", v})
	}
	for name, g := range GaugeReadings() {
		fams = append(fams, family{promName(name), "gauge", "Current level of the " + name + " gauge.", g.Value})
		fams = append(fams, family{promName(name) + "_max", "gauge", "High-water mark of the " + name + " gauge.", g.Max})
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", f.name, f.help, f.name, f.kind, f.name, f.value)
	}
}

// promHandler serves WritePrometheus as the /metrics endpoint.
func promHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WritePrometheus(w)
}
