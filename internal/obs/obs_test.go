package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// install swaps in a fresh recorder for the test and restores the
// disabled state afterwards.
func install(t *testing.T) *Recorder {
	t.Helper()
	rec := NewRecorder()
	Install(rec)
	t.Cleanup(func() { Install(nil) })
	return rec
}

var (
	benchCounter = NewCounter("obs.test.bench_counter")
	benchGauge   = NewGauge("obs.test.bench_gauge")
)

func TestSpansAndTracks(t *testing.T) {
	rec := install(t)
	if !Enabled() {
		t.Fatal("recorder installed but Enabled() is false")
	}
	tr := TrackFor("worker-1")
	if tr == 0 {
		t.Fatal("new track got id 0 (reserved for main)")
	}
	if again := TrackFor("worker-1"); again != tr {
		t.Errorf("TrackFor not stable: %d then %d", tr, again)
	}
	sp := StartSpanOn(tr, "stage-a", "mm")
	inner := StartSpanOn(tr, "stage-a.inner", "")
	inner.End()
	sp.End()
	Instant(tr, "tick", "x")
	StartSpan("stage-b", "").End()

	events, tracks := rec.snapshot()
	if len(events) != 4 {
		t.Fatalf("%d events, want 4", len(events))
	}
	if len(tracks) != 2 || tracks[0] != "main" || tracks[1] != "worker-1" {
		t.Fatalf("tracks %v", tracks)
	}
	// spans close in LIFO order here: inner before outer
	if events[0].name != "stage-a.inner" || events[1].name != "stage-a" {
		t.Errorf("unexpected event order: %q, %q", events[0].name, events[1].name)
	}
	for _, ev := range events {
		if ev.start < 0 || ev.dur < 0 {
			t.Errorf("event %q has negative time: start=%d dur=%d", ev.name, ev.start, ev.dur)
		}
	}
}

func TestChromeTraceIsValidTraceEventJSON(t *testing.T) {
	rec := install(t)
	tr := TrackFor("pool-slot-00")
	sp := StartSpanOn(tr, "simulate", "wc/nvfi-mesh")
	time.Sleep(time.Millisecond)
	sp.End()
	Instant(tr, "mr.steal", "wc")

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string            `json:"name"`
			Phase string            `json:"ph"`
			PID   int               `json:"pid"`
			TID   int32             `json:"tid"`
			TS    float64           `json:"ts"`
			Dur   float64           `json:"dur"`
			Args  map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q", out.DisplayTimeUnit)
	}
	var metas, spans, instants int
	for _, ev := range out.TraceEvents {
		switch ev.Phase {
		case "M":
			metas++
			if ev.Name != "thread_name" || ev.Args["name"] == "" {
				t.Errorf("bad metadata event %+v", ev)
			}
		case "X":
			spans++
			if ev.TS < 0 || ev.Dur <= 0 {
				t.Errorf("span %q ts=%v dur=%v", ev.Name, ev.TS, ev.Dur)
			}
			if ev.Args["detail"] != "wc/nvfi-mesh" {
				t.Errorf("span detail %q", ev.Args["detail"])
			}
		case "i":
			instants++
		default:
			t.Errorf("unexpected phase %q", ev.Phase)
		}
	}
	if metas != 2 || spans != 1 || instants != 1 {
		t.Errorf("metas=%d spans=%d instants=%d, want 2/1/1", metas, spans, instants)
	}
}

func TestManifestAggregatesAndRoundTrips(t *testing.T) {
	rec := install(t)
	for i := 0; i < 3; i++ {
		sp := StartSpan("simulate", "wc")
		time.Sleep(time.Millisecond)
		sp.End()
	}
	StartSpan("probe-sim", "wc").End()

	m := rec.BuildManifest("reproduce", []string{"-summary"})
	m.Jobs = 4
	m.ConfigHash = "abc123"
	m.Cache = &CacheSummary{Hits: 5, Misses: 1, CorruptEvicted: 2}

	if len(m.Stages) != 2 {
		t.Fatalf("%d stages, want 2: %+v", len(m.Stages), m.Stages)
	}
	// stages sort by name: probe-sim before simulate
	if m.Stages[0].Name != "probe-sim" || m.Stages[1].Name != "simulate" {
		t.Errorf("stage order %q, %q", m.Stages[0].Name, m.Stages[1].Name)
	}
	sim := m.Stages[1]
	if sim.Count != 3 || sim.TotalMS < sim.MaxMS || sim.MinMS > sim.MaxMS || sim.MinMS <= 0 {
		t.Errorf("bad simulate aggregation: %+v", sim)
	}

	blob, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Command != "reproduce" || back.Jobs != 4 || back.ConfigHash != "abc123" {
		t.Errorf("scalar fields lost: %+v", back)
	}
	if back.Cache == nil || *back.Cache != *m.Cache {
		t.Errorf("cache stats lost: %+v", back.Cache)
	}
	if len(back.Stages) != len(m.Stages) || back.Stages[1] != m.Stages[1] {
		t.Errorf("stages lost: %+v", back.Stages)
	}
	if !back.StartTime.Equal(m.StartTime) {
		t.Errorf("start time changed: %v -> %v", m.StartTime, back.StartTime)
	}
	if back.WallMS != m.WallMS {
		t.Errorf("wall time changed: %v -> %v", m.WallMS, back.WallMS)
	}
}

func TestCountersAndGauges(t *testing.T) {
	c := NewCounter("obs.test.counter")
	g := NewGauge("obs.test.gauge")
	c.Add(5)
	c.Add(2)
	g.Add(3)
	g.Add(2)
	g.Add(-4)
	if c.Value() != 7 {
		t.Errorf("counter %d, want 7", c.Value())
	}
	if got := CounterTotals()["obs.test.counter"]; got != 7 {
		t.Errorf("snapshot counter %d, want 7", got)
	}
	r := GaugeReadings()["obs.test.gauge"]
	if r.Value != 1 || r.Max != 5 {
		t.Errorf("gauge reading %+v, want value 1 max 5", r)
	}
}

// TestDisabledTelemetryAllocatesNothing is the zero-allocation guarantee:
// with no recorder installed, span, instant, track and counter calls must
// not allocate.
func TestDisabledTelemetryAllocatesNothing(t *testing.T) {
	Install(nil)
	allocs := testing.AllocsPerRun(1000, func() {
		sp := StartSpanOn(3, "stage", "detail")
		sp.End()
		StartSpan("stage", "detail").End()
		Instant(0, "event", "")
		TrackFor("some-track")
		benchCounter.Add(1)
		benchGauge.Add(1)
		benchGauge.Add(-1)
	})
	if allocs != 0 {
		t.Errorf("disabled telemetry allocates %.1f times per op, want 0", allocs)
	}
}

func TestServeDebugExposesPprofAndExpvar(t *testing.T) {
	addr, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars returned %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "wivfi_counters") {
		t.Error("/debug/vars does not publish wivfi_counters")
	}
	resp2, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ returned %d", resp2.StatusCode)
	}
}

// BenchmarkDisabledSpan measures the disabled fast path; run with
// -benchmem to confirm 0 B/op, 0 allocs/op.
func BenchmarkDisabledSpan(b *testing.B) {
	Install(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartSpanOn(1, "stage", "detail")
		sp.End()
	}
}

func BenchmarkDisabledCounter(b *testing.B) {
	Install(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchCounter.Add(1)
	}
}

func BenchmarkEnabledSpan(b *testing.B) {
	rec := NewRecorder()
	Install(rec)
	defer Install(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartSpanOn(1, "stage", "detail")
		sp.End()
	}
}
