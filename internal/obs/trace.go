package obs

import (
	"encoding/json"
	"io"
	"os"
)

// The export format is the Chrome trace_event "JSON Object Format": an
// object with a traceEvents array, loadable in chrome://tracing and
// Perfetto. Spans become complete events (ph "X") with microsecond
// timestamps, instants become ph "i", and every track gets a thread_name
// metadata record so the viewer shows "pool-slot-03" or "mr-worker-01"
// instead of a bare tid.

// chromeEvent is one trace_event entry.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Phase string            `json:"ph"`
	PID   int               `json:"pid"`
	TID   int32             `json:"tid"`
	TS    float64           `json:"ts"`
	Dur   float64           `json:"dur,omitempty"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// tracePID is the single synthetic process id of the trace.
const tracePID = 1

// snapshot copies the event log and track table under the lock.
func (r *Recorder) snapshot() ([]event, []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	events := make([]event, len(r.events))
	copy(events, r.events)
	tracks := make([]string, len(r.tracks))
	copy(tracks, r.tracks)
	return events, tracks
}

// WriteChromeTrace writes the run's event log as trace_event JSON.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	events, tracks := r.snapshot()
	out := chromeTrace{DisplayTimeUnit: "ms"}
	out.TraceEvents = make([]chromeEvent, 0, len(events)+len(tracks))
	for id, name := range tracks {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Phase: "M", PID: tracePID, TID: int32(id),
			Args: map[string]string{"name": name},
		})
	}
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.name, Cat: "wivfi", PID: tracePID, TID: ev.track,
			TS: float64(ev.start) / 1e3,
		}
		if ev.detail != "" {
			ce.Args = map[string]string{"detail": ev.detail}
		}
		switch ev.kind {
		case spanEvent:
			ce.Phase = "X"
			ce.Dur = float64(ev.dur) / 1e3
		case instantEvent:
			ce.Phase = "i"
			ce.Scope = "t"
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteChromeTraceFile writes the trace to a file.
func (r *Recorder) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
