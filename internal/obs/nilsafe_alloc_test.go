package obs

import (
	"reflect"
	"testing"
)

// The zero Span is what StartSpan returns while telemetry is disabled, and
// instrumented code calls its methods unconditionally — so every exported
// Span method must be a zero-alloc no-op on the zero value. Like the
// timeline collector test, this is reflection-driven: a newly added
// exported method fails until it has a zero-alloc entry here.

var zeroSpanCalls = map[string]func(){
	"Span.End": func() { Span{}.End() },
}

func TestZeroSpanZeroAllocEveryExportedMethod(t *testing.T) {
	Install(nil)
	covered := map[string]bool{}
	v := reflect.ValueOf(Span{})
	for i := 0; i < v.NumMethod(); i++ {
		key := "Span." + v.Type().Method(i).Name
		covered[key] = true
		mv := v.Method(i)
		mt := mv.Type()
		nin := mt.NumIn()
		if mt.IsVariadic() {
			nin--
		}
		args := make([]reflect.Value, nin)
		for j := range args {
			args[j] = reflect.Zero(mt.In(j))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s panics on the zero Span: %v", key, r)
				}
			}()
			mv.Call(args)
		}()
		fn, ok := zeroSpanCalls[key]
		if !ok {
			t.Errorf("%s: new exported method has no zero-alloc regression entry; add it to zeroSpanCalls", key)
			continue
		}
		if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
			t.Errorf("%s allocates %.0f/op on the zero Span; the disabled path must be free", key, allocs)
		}
	}
	for key := range zeroSpanCalls {
		if !covered[key] {
			t.Errorf("zeroSpanCalls has entry %s for a method that no longer exists", key)
		}
	}
}
