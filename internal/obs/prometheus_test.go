package obs

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"sim.pool.queue-wait": "wivfi_sim_pool_queue_wait",
		"expt.cache.hits":     "wivfi_expt_cache_hits",
		"Already_OK9":         "wivfi_Already_OK9",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	c := NewCounter("promtest.requests")
	c.Add(41)
	c.Add(1)
	g := NewGauge("promtest.in-flight")
	g.Add(5)
	g.Add(-2)

	var b strings.Builder
	WritePrometheus(&b)
	out := b.String()

	for _, want := range []string{
		"# TYPE wivfi_promtest_requests counter\nwivfi_promtest_requests 42\n",
		"# TYPE wivfi_promtest_in_flight gauge\nwivfi_promtest_in_flight 3\n",
		"# TYPE wivfi_promtest_in_flight_max gauge\nwivfi_promtest_in_flight_max 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// every sample line is a legal prometheus "name value" pair, every
	// family has HELP and TYPE, and families are sorted
	sample := regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]* -?\d+$`)
	var names []string
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	for i, ln := range lines {
		if strings.HasPrefix(ln, "# HELP ") || strings.HasPrefix(ln, "# TYPE ") {
			continue
		}
		if !sample.MatchString(ln) {
			t.Errorf("line %d not a valid sample: %q", i, ln)
		}
		names = append(names, strings.Fields(ln)[0])
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("families not sorted: %v", names)
	}
	if len(names) == 0 {
		t.Fatal("no samples rendered")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	c := NewCounter("promtest.endpoint")
	c.Add(7)
	addr, err := ServeDebug("localhost:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "wivfi_promtest_endpoint 7") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
}
