package obs

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strings"
	"testing"
	"time"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"sim.pool.queue-wait": "wivfi_sim_pool_queue_wait",
		"expt.cache.hits":     "wivfi_expt_cache_hits",
		"Already_OK9":         "wivfi_Already_OK9",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	c := NewCounter("promtest.requests")
	c.Add(41)
	c.Add(1)
	g := NewGauge("promtest.in-flight")
	g.Add(5)
	g.Add(-2)

	var b strings.Builder
	WritePrometheus(&b)
	out := b.String()

	for _, want := range []string{
		"# TYPE wivfi_promtest_requests counter\nwivfi_promtest_requests 42\n",
		"# TYPE wivfi_promtest_in_flight gauge\nwivfi_promtest_in_flight 3\n",
		"# TYPE wivfi_promtest_in_flight_max gauge\nwivfi_promtest_in_flight_max 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// every sample line is a legal prometheus pair (histogram buckets may
	// carry an le label), every family has HELP and TYPE, and families are
	// sorted
	sample := regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*(\{le="(\+Inf|\d+)"\})? -?\d+$`)
	var families []string
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	for i, ln := range lines {
		if name, ok := strings.CutPrefix(ln, "# TYPE "); ok {
			families = append(families, strings.Fields(name)[0])
			continue
		}
		if strings.HasPrefix(ln, "# HELP ") {
			continue
		}
		if !sample.MatchString(ln) {
			t.Errorf("line %d not a valid sample: %q", i, ln)
		}
	}
	if !sort.StringsAreSorted(families) {
		t.Errorf("families not sorted: %v", families)
	}
	if len(families) == 0 {
		t.Fatal("no families rendered")
	}
}

func TestWritePrometheusHistogram(t *testing.T) {
	RegisterHistogram("promtest.latency_ms", func() HistogramSnapshot {
		return HistogramSnapshot{
			Count: 6,
			Sum:   112,
			Buckets: []HistogramBucket{
				{UpperBound: 1, Count: 2},
				{UpperBound: 8, Count: 3},
				{UpperBound: 64, Count: 1},
			},
		}
	})
	var b strings.Builder
	WritePrometheus(&b)
	out := b.String()

	want := "# HELP wivfi_promtest_latency_ms Distribution of promtest.latency_ms.\n" +
		"# TYPE wivfi_promtest_latency_ms histogram\n" +
		"wivfi_promtest_latency_ms_bucket{le=\"1\"} 2\n" +
		"wivfi_promtest_latency_ms_bucket{le=\"8\"} 5\n" +
		"wivfi_promtest_latency_ms_bucket{le=\"64\"} 6\n" +
		"wivfi_promtest_latency_ms_bucket{le=\"+Inf\"} 6\n" +
		"wivfi_promtest_latency_ms_sum 112\n" +
		"wivfi_promtest_latency_ms_count 6\n"
	if !strings.Contains(out, want) {
		t.Errorf("histogram family not rendered cumulatively:\nwant:\n%s\ngot:\n%s", want, out)
	}

	// re-registering the same name replaces the provider instead of
	// duplicating the family
	RegisterHistogram("promtest.latency_ms", func() HistogramSnapshot {
		return HistogramSnapshot{Count: 1, Sum: 3, Buckets: []HistogramBucket{{UpperBound: 4, Count: 1}}}
	})
	b.Reset()
	WritePrometheus(&b)
	if n := strings.Count(b.String(), "# TYPE wivfi_promtest_latency_ms histogram"); n != 1 {
		t.Errorf("replaced histogram rendered %d times, want 1", n)
	}
	if !strings.Contains(b.String(), "wivfi_promtest_latency_ms_count 1\n") {
		t.Errorf("replacement provider not used:\n%s", b.String())
	}
}

func TestMetricsEndpoint(t *testing.T) {
	c := NewCounter("promtest.endpoint")
	c.Add(7)
	addr, err := ServeDebug("localhost:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "wivfi_promtest_endpoint 7") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
}

// TestStartDebugServerShutdown is the embeddability contract wivfid relies
// on: the returned handle stops the debug server cleanly, the port is
// released, and a second server can start afterwards.
func TestStartDebugServerShutdown(t *testing.T) {
	addr, srv, err := StartDebugServer("localhost:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("server not serving before shutdown: %v", err)
	}
	resp.Body.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := http.Get("http://" + addr + "/metrics"); err != nil {
			break // connection refused: listener is gone
		}
		if time.Now().After(deadline) {
			t.Fatal("server still serving after Close")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// the address is free again for a fresh server
	again, srv2, err := StartDebugServer(addr)
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer srv2.Close()
	if again != addr {
		t.Errorf("rebound to %s, want %s", again, addr)
	}
}
