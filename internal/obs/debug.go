package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the expvar registrations (expvar.Publish panics on a
// duplicate name).
var publishOnce sync.Once

// ServeDebug starts an HTTP server on addr exposing net/http/pprof under
// /debug/pprof/, expvar (including every obs counter and gauge, live)
// under /debug/vars, and every counter and gauge in Prometheus text
// format under /metrics. It returns the bound address — pass
// "localhost:0" for an ephemeral port — and serves until the process
// exits. This is the -debug-addr flag of the CLIs.
func ServeDebug(addr string) (string, error) {
	publishOnce.Do(func() {
		expvar.Publish("wivfi_counters", expvar.Func(func() any { return CounterTotals() }))
		expvar.Publish("wivfi_gauges", expvar.Func(func() any { return GaugeReadings() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", promHandler)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, mux) //nolint:errcheck // serves for the process lifetime
	return ln.Addr().String(), nil
}
