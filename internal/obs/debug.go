package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the expvar registrations (expvar.Publish panics on a
// duplicate name).
var publishOnce sync.Once

// DebugMux returns a fresh mux with the standard debug surface:
// net/http/pprof under /debug/pprof/, expvar (including every obs counter
// and gauge, live) under /debug/vars, and every counter, gauge and
// registered histogram in Prometheus text format under /metrics.
// Embedding servers (cmd/wivfid) mount their own routes next to these on
// the returned mux.
func DebugMux() *http.ServeMux {
	publishOnce.Do(func() {
		expvar.Publish("wivfi_counters", expvar.Func(func() any { return CounterTotals() }))
		expvar.Publish("wivfi_gauges", expvar.Func(func() any { return GaugeReadings() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", promHandler)
	return mux
}

// StartDebugServer starts an HTTP server on addr exposing DebugMux. It
// returns the bound address — pass "localhost:0" for an ephemeral port —
// and the server itself so embedding processes can stop it cleanly
// (Shutdown for graceful drain, Close for immediate teardown). The serve
// loop runs on its own goroutine until the server is shut down.
func StartDebugServer(addr string) (string, *http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: DebugMux()}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Shutdown/Close is the normal exit
	return ln.Addr().String(), srv, nil
}

// ServeDebug starts a debug server that serves until the process exits —
// the fire-and-forget form behind the -debug-addr flag of the CLIs. It
// returns the bound address. Callers that need to stop the server use
// StartDebugServer instead.
func ServeDebug(addr string) (string, error) {
	bound, _, err := StartDebugServer(addr)
	return bound, err
}
