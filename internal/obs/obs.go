// Package obs is the run-telemetry layer of the experiment harness:
// nestable tracing spans, named counters and gauges, and a per-run event
// log that exports as Chrome trace_event JSON (chrome://tracing, Perfetto)
// and as a machine-readable run manifest.
//
// Two guarantees shape the design:
//
//   - Zero perturbation of results. Telemetry never writes to stdout —
//     progress lines go to stderr, traces and manifests go to files — so
//     the byte-identical-output property of the deterministic harness
//     holds with telemetry on or off.
//
//   - Zero-allocation no-op when disabled. Spans and instant events are
//     recorded only while a Recorder is installed; with none installed,
//     StartSpan/End/Instant/TrackFor return immediately without
//     allocating, so instrumented hot paths (the DES inner loops, the
//     MapReduce workers) cost an atomic load. Counters and gauges are
//     always live: they are single atomic adds, allocation-free either
//     way, which lets a run manifest report totals even for phases that
//     ran before the recorder was installed.
//
// Call sites that must build a span name or detail string dynamically
// should guard the formatting with Enabled(), since the fmt call itself
// allocates regardless of recorder state.
package obs

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// eventKind discriminates the recorder's event log entries.
type eventKind uint8

const (
	spanEvent eventKind = iota
	instantEvent
)

// event is one entry of the per-run log. Times are nanoseconds since the
// recorder's start.
type event struct {
	kind   eventKind
	name   string
	detail string
	track  int32
	start  int64
	dur    int64
}

// Recorder accumulates the event log of one run. It is safe for
// concurrent use; install it with Install to activate recording.
type Recorder struct {
	start time.Time

	mu       sync.Mutex
	events   []event
	tracks   []string
	trackIDs map[string]int32
}

// NewRecorder returns an empty recorder whose clock starts now. Track 0
// ("main") exists from the start; further tracks are created on demand by
// TrackFor.
func NewRecorder() *Recorder {
	return &Recorder{
		start:    time.Now(),
		tracks:   []string{"main"},
		trackIDs: map[string]int32{"main": 0},
	}
}

// active is the installed recorder, nil when telemetry is disabled.
var active atomic.Pointer[Recorder]

// Install makes r the active recorder (nil disables recording). Spans
// started under a previous recorder finish against that recorder, so
// swapping mid-run loses no events.
func Install(r *Recorder) { active.Store(r) }

// Enabled reports whether a recorder is installed. Use it to guard
// telemetry-only work (building span details, looking up tracks) that
// would otherwise allocate on the disabled path.
func Enabled() bool { return active.Load() != nil }

// now returns nanoseconds since the recorder's start.
func (r *Recorder) now() int64 { return int64(time.Since(r.start)) }

// TrackFor returns the id of the named track (a horizontal lane in the
// trace viewer — one per pool slot, one per MapReduce worker), creating
// it on first use. With no recorder installed it returns 0 and allocates
// nothing.
func TrackFor(name string) int32 {
	r := active.Load()
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.trackIDs[name]; ok {
		return id
	}
	id := int32(len(r.tracks))
	r.tracks = append(r.tracks, name)
	r.trackIDs[name] = id
	return id
}

// Span is one timed interval. The zero Span is a valid no-op, which is
// what StartSpan returns while telemetry is disabled.
type Span struct {
	rec    *Recorder
	name   string
	detail string
	track  int32
	start  int64
}

// StartSpan opens a span on track 0 ("main"). name is the aggregation key
// (per-stage wall times in the manifest group by it); detail
// distinguishes instances, e.g. the benchmark name.
func StartSpan(name, detail string) Span { return StartSpanOn(0, name, detail) }

// StartSpanOn opens a span on an explicit track. Returns a no-op span,
// without allocating, when no recorder is installed.
func StartSpanOn(track int32, name, detail string) Span {
	r := active.Load()
	if r == nil {
		return Span{}
	}
	return Span{rec: r, name: name, detail: detail, track: track, start: r.now()}
}

// End closes the span and appends it to the event log. Safe on the zero
// Span.
func (s Span) End() {
	if s.rec == nil {
		return
	}
	end := s.rec.now()
	s.rec.mu.Lock()
	s.rec.events = append(s.rec.events, event{
		kind: spanEvent, name: s.name, detail: s.detail,
		track: s.track, start: s.start, dur: end - s.start,
	})
	s.rec.mu.Unlock()
}

// Instant records a zero-duration event (a steal, a cache eviction) on
// the given track. No-op without a recorder.
func Instant(track int32, name, detail string) {
	r := active.Load()
	if r == nil {
		return
	}
	ts := r.now()
	r.mu.Lock()
	r.events = append(r.events, event{
		kind: instantEvent, name: name, detail: detail, track: track, start: ts,
	})
	r.mu.Unlock()
}

// ---- Counters and gauges -------------------------------------------------

// registry holds every counter and gauge ever created, for manifest and
// expvar snapshots. Metrics are package-level singletons in practice, so
// the registry only grows.
var registry struct {
	mu       sync.Mutex
	counters []*Counter
	gauges   []*Gauge
}

// Counter is a monotonically named total. Always live: Add is a single
// allocation-free atomic regardless of recorder state, so process-wide
// totals (packets simulated, cache hits) are exact even when tracing is
// off.
type Counter struct {
	name string
	v    atomic.Int64
}

// NewCounter registers a counter under name. Call once at package init.
func NewCounter(name string) *Counter {
	c := &Counter{name: name}
	registry.mu.Lock()
	registry.counters = append(registry.counters, c)
	registry.mu.Unlock()
	return c
}

// Add increments the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current total.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the registered name.
func (c *Counter) Name() string { return c.name }

// Gauge is a named level (e.g. pool jobs in flight) with a high-water
// mark. Like counters, gauges are always live and allocation-free.
type Gauge struct {
	name string
	v    atomic.Int64
	max  atomic.Int64
}

// NewGauge registers a gauge under name. Call once at package init.
func NewGauge(name string) *Gauge {
	g := &Gauge{name: name}
	registry.mu.Lock()
	registry.gauges = append(registry.gauges, g)
	registry.mu.Unlock()
	return g
}

// Add moves the gauge by d (negative to decrease) and updates the
// high-water mark.
func (g *Gauge) Add(d int64) {
	v := g.v.Add(d)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max returns the high-water mark.
func (g *Gauge) Max() int64 { return g.max.Load() }

// CounterTotals snapshots every registered counter. Duplicate names sum.
func CounterTotals() map[string]int64 {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make(map[string]int64, len(registry.counters))
	for _, c := range registry.counters {
		out[c.name] += c.v.Load()
	}
	return out
}

// GaugeReading is one gauge's snapshot.
type GaugeReading struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// GaugeReadings snapshots every registered gauge.
func GaugeReadings() map[string]GaugeReading {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make(map[string]GaugeReading, len(registry.gauges))
	for _, g := range registry.gauges {
		out[g.name] = GaugeReading{Value: g.v.Load(), Max: g.max.Load()}
	}
	return out
}

// ---- Verbose progress ----------------------------------------------------

// processStart anchors the elapsed-time prefix of Logf lines.
var processStart = time.Now()

var verbose atomic.Bool

// SetVerbose switches the stderr progress stream (the -v flag) on or off.
func SetVerbose(on bool) { verbose.Store(on) }

// Verbose reports whether progress logging is on. Guard any Logf call
// whose arguments are expensive to build.
func Verbose() bool { return verbose.Load() }

// Logf prints one timestamped progress line to stderr when verbose mode
// is on. Never writes to stdout. Hot paths should guard calls with
// Verbose() — the variadic boxing can allocate even when the line is
// dropped.
func Logf(format string, args ...any) {
	if !verbose.Load() {
		return
	}
	fmt.Fprintf(os.Stderr, "[%9.3fs] %s\n", time.Since(processStart).Seconds(), fmt.Sprintf(format, args...))
}
