package obs

import (
	"encoding/json"
	"os"
	"sort"
	"time"
)

// StageSummary aggregates every span sharing one name: the per-stage wall
// times of the manifest. Wall time sums span durations, so concurrent
// spans of one stage can total more than the run's elapsed time.
type StageSummary struct {
	Name    string  `json:"name"`
	Count   int     `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MinMS   float64 `json:"min_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// CacheSummary is the design cache's outcome totals.
type CacheSummary struct {
	Hits           int64 `json:"hits"`
	Misses         int64 `json:"misses"`
	CorruptEvicted int64 `json:"corrupt_evicted"`
}

// FidelitySummary condenses the run's results-observability outcome into
// the manifest: the scoreboard tally, the number of baseline regressions
// and where the full artifacts were written. The structured detail lives
// in the snapshot and report files; the manifest only carries enough to
// tell green from red.
type FidelitySummary struct {
	SnapshotPath string `json:"snapshot_path,omitempty"`
	BaselinePath string `json:"baseline_path,omitempty"`
	ReportPath   string `json:"report_path,omitempty"`
	Pass         int    `json:"pass"`
	Warn         int    `json:"warn"`
	Fail         int    `json:"fail"`
	Regressions  int    `json:"regressions"`
	// ConfigMismatch reports that the baseline snapshot was produced
	// under a different experiment configuration.
	ConfigMismatch bool `json:"config_mismatch,omitempty"`
}

// HistogramSummary condenses one timeline histogram (packet latency,
// task sizes) into the manifest: count and the headline quantiles. The
// full bucket data lives in the timeline artifacts.
type HistogramSummary struct {
	Name  string `json:"name"`
	Unit  string `json:"unit,omitempty"`
	Count int64  `json:"count"`
	Min   int64  `json:"min"`
	P50   int64  `json:"p50"`
	P95   int64  `json:"p95"`
	P99   int64  `json:"p99"`
	Max   int64  `json:"max"`
}

// Manifest is the machine-readable summary of one harness run. It
// round-trips through encoding/json; the -manifest flag of the CLIs
// writes it next to the trace.
type Manifest struct {
	Command    string                  `json:"command"`
	Args       []string                `json:"args,omitempty"`
	StartTime  time.Time               `json:"start_time"`
	WallMS     float64                 `json:"wall_ms"`
	Jobs       int                     `json:"jobs,omitempty"`
	ConfigHash string                  `json:"config_hash,omitempty"`
	CacheDir   string                  `json:"cache_dir,omitempty"`
	Cache      *CacheSummary           `json:"cache,omitempty"`
	Fidelity   *FidelitySummary        `json:"fidelity,omitempty"`
	Histograms []HistogramSummary      `json:"histograms,omitempty"`
	Stages     []StageSummary          `json:"stages"`
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]GaugeReading `json:"gauges"`
}

// BuildManifest aggregates the recorder's spans into per-stage timings
// and snapshots every registered counter and gauge. The caller fills the
// run-specific fields (Jobs, ConfigHash, CacheDir, Cache) before writing.
func (r *Recorder) BuildManifest(command string, args []string) Manifest {
	events, _ := r.snapshot()
	byName := map[string]*StageSummary{}
	for _, ev := range events {
		if ev.kind != spanEvent {
			continue
		}
		ms := float64(ev.dur) / 1e6
		s, ok := byName[ev.name]
		if !ok {
			byName[ev.name] = &StageSummary{Name: ev.name, Count: 1, TotalMS: ms, MinMS: ms, MaxMS: ms}
			continue
		}
		s.Count++
		s.TotalMS += ms
		if ms < s.MinMS {
			s.MinMS = ms
		}
		if ms > s.MaxMS {
			s.MaxMS = ms
		}
	}
	stages := make([]StageSummary, 0, len(byName))
	for _, s := range byName {
		stages = append(stages, *s)
	}
	sort.Slice(stages, func(i, j int) bool { return stages[i].Name < stages[j].Name })
	return Manifest{
		Command:   command,
		Args:      args,
		StartTime: r.start,
		WallMS:    float64(r.now()) / 1e6,
		Stages:    stages,
		Counters:  CounterTotals(),
		Gauges:    GaugeReadings(),
	}
}

// WriteManifestFile writes the manifest as indented JSON.
func WriteManifestFile(path string, m Manifest) error {
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
