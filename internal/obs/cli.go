package obs

import (
	"flag"
	"fmt"
	"os"
)

// CLI bundles the telemetry flags shared by the command-line tools
// (-trace, -manifest, -v, -debug-addr) and the setup/teardown around a
// run. Usage:
//
//	cli := obs.NewCLI(flag.CommandLine)
//	flag.Parse()
//	if err := cli.Start("reproduce"); err != nil { ... }
//	... run ...
//	if err := cli.Finish(func(m *obs.Manifest) { m.Jobs = jobs }); err != nil { ... }
type CLI struct {
	TracePath    string
	ManifestPath string
	DebugAddr    string
	Verbose      bool

	cmd   string
	rec   *Recorder
	force bool
}

// NewCLI registers the telemetry flags on fs.
func NewCLI(fs *flag.FlagSet) *CLI {
	c := &CLI{}
	fs.StringVar(&c.TracePath, "trace", "", "write a Chrome trace_event JSON file (open in Perfetto or chrome://tracing)")
	fs.StringVar(&c.ManifestPath, "manifest", "", "write a machine-readable run manifest (JSON)")
	fs.BoolVar(&c.Verbose, "v", false, "print progress lines to stderr")
	fs.StringVar(&c.DebugAddr, "debug-addr", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	return c
}

// ForceRecorder makes the next Start install a recorder even when no
// trace or manifest path was requested — callers that embed the manifest
// elsewhere (the fidelity run report) need stage timings regardless.
// Call it after flag parsing and before Start.
func (c *CLI) ForceRecorder() { c.force = true }

// Start applies the parsed flags: verbose mode, the recorder (installed
// when a trace or manifest was requested, or ForceRecorder was called),
// and the debug server. cmd names the tool in the manifest and the debug
// banner.
func (c *CLI) Start(cmd string) error {
	c.cmd = cmd
	SetVerbose(c.Verbose)
	if c.TracePath != "" || c.ManifestPath != "" || c.force {
		c.rec = NewRecorder()
		Install(c.rec)
	}
	if c.DebugAddr != "" {
		addr, err := ServeDebug(c.DebugAddr)
		if err != nil {
			return fmt.Errorf("%s: debug server: %w", cmd, err)
		}
		fmt.Fprintf(os.Stderr, "%s: debug server at http://%s/debug/pprof/ (expvar at /debug/vars)\n", cmd, addr)
	}
	return nil
}

// Recording reports whether Start installed a recorder.
func (c *CLI) Recording() bool { return c.rec != nil }

// BuildManifest assembles the run manifest as of now, applying customize
// (may be nil). It returns nil when no recorder is installed. Finish
// builds its -manifest file the same way, so a report embedding this
// manifest and the file on disk agree.
func (c *CLI) BuildManifest(customize func(*Manifest)) *Manifest {
	if c.rec == nil {
		return nil
	}
	m := c.rec.BuildManifest(c.cmd, os.Args[1:])
	if customize != nil {
		customize(&m)
	}
	return &m
}

// Finish writes the requested trace and manifest files. customize (may be
// nil) edits the manifest before it is written — the place to fill Jobs,
// ConfigHash, Cache and Fidelity. Safe to call when no recorder was
// installed.
func (c *CLI) Finish(customize func(*Manifest)) error {
	if c.rec == nil {
		return nil
	}
	if c.TracePath != "" {
		if err := c.rec.WriteChromeTraceFile(c.TracePath); err != nil {
			return fmt.Errorf("%s: writing trace: %w", c.cmd, err)
		}
		Logf("trace written to %s", c.TracePath)
	}
	if c.ManifestPath != "" {
		m := c.BuildManifest(customize)
		if err := WriteManifestFile(c.ManifestPath, *m); err != nil {
			return fmt.Errorf("%s: writing manifest: %w", c.cmd, err)
		}
		Logf("manifest written to %s", c.ManifestPath)
	}
	return nil
}
