// Package data generates the synthetic datasets that stand in for the
// paper's inputs (Table 1): a Zipf-worded text corpus for Word Count, a
// pixel buffer for Histogram, vectors for Kmeans, noisy linear points for
// Linear Regression, and dense matrices for Matrix Multiplication and PCA.
// All generators are deterministic for a given seed.
package data

import (
	"fmt"
	"math"
	"math/rand"
)

// Words returns the vocabulary used by the text generator: wordCount
// distinct tokens w0..w{n-1}.
func Words(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("w%04d", i)
	}
	return out
}

// Text generates lines of Zipf-distributed words: natural-language-like
// frequency skew so Word Count's combiners see realistic key reuse.
func Text(seed int64, lines, wordsPerLine, vocabulary int) []string {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(vocabulary-1))
	vocab := Words(vocabulary)
	out := make([]string, lines)
	for i := range out {
		line := make([]byte, 0, wordsPerLine*6)
		for w := 0; w < wordsPerLine; w++ {
			if w > 0 {
				line = append(line, ' ')
			}
			line = append(line, vocab[zipf.Uint64()]...)
		}
		out[i] = string(line)
	}
	return out
}

// Pixel is one RGB pixel for the Histogram benchmark.
type Pixel struct{ R, G, B uint8 }

// Pixels generates a synthetic bitmap with smooth gradients plus noise,
// mimicking the value distribution of a photographic input.
func Pixels(seed int64, n int) []Pixel {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Pixel, n)
	for i := range out {
		base := float64(i) / float64(n) * 255
		out[i] = Pixel{
			R: uint8(clamp(base + rng.NormFloat64()*20)),
			G: uint8(clamp(255 - base + rng.NormFloat64()*20)),
			B: uint8(clamp(128 + rng.NormFloat64()*40)),
		}
	}
	return out
}

func clamp(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 255 {
		return 255
	}
	return x
}

// Vectors generates n points of the given dimension drawn from k Gaussian
// clusters — the Kmeans input. The true cluster centres are spread on a
// hypersphere so the first Kmeans iteration makes large reassignments and
// the second converges, matching the two-iteration behaviour in the paper.
func Vectors(seed int64, n, dim, k int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	centres := make([][]float64, k)
	for c := range centres {
		centres[c] = make([]float64, dim)
		for d := range centres[c] {
			centres[c][d] = math.Cos(float64(c)*2*math.Pi/float64(k)+float64(d)) * 10
		}
	}
	out := make([][]float64, n)
	for i := range out {
		c := centres[rng.Intn(k)]
		v := make([]float64, dim)
		for d := range v {
			v[d] = c[d] + rng.NormFloat64()
		}
		out[i] = v
	}
	return out
}

// Point is one (x, y) observation for Linear Regression.
type Point struct{ X, Y float64 }

// Points generates n observations of y = slope*x + intercept + noise.
func Points(seed int64, n int, slope, intercept, noise float64) []Point {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Point, n)
	for i := range out {
		x := rng.Float64() * 100
		out[i] = Point{X: x, Y: slope*x + intercept + rng.NormFloat64()*noise}
	}
	return out
}

// Matrix generates a rows x cols dense matrix with entries in [-1, 1).
func Matrix(seed int64, rows, cols int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, rows)
	for r := range out {
		out[r] = make([]float64, cols)
		for c := range out[r] {
			out[r][c] = rng.Float64()*2 - 1
		}
	}
	return out
}
