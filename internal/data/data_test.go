package data

import (
	"strings"
	"testing"
)

func TestWords(t *testing.T) {
	ws := Words(3)
	if len(ws) != 3 || ws[0] != "w0000" || ws[2] != "w0002" {
		t.Errorf("Words = %v", ws)
	}
}

func TestTextDeterministicAndShaped(t *testing.T) {
	a := Text(1, 100, 10, 50)
	b := Text(1, 100, 10, 50)
	if len(a) != 100 {
		t.Fatalf("%d lines", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Text not deterministic")
		}
		if got := len(strings.Fields(a[i])); got != 10 {
			t.Fatalf("line %d has %d words", i, got)
		}
	}
	// Zipf skew: the most common word should dominate
	counts := map[string]int{}
	for _, line := range a {
		for _, w := range strings.Fields(line) {
			counts[w]++
		}
	}
	var top, total int
	for _, c := range counts {
		total += c
		if c > top {
			top = c
		}
	}
	if float64(top)/float64(total) < 0.15 {
		t.Errorf("top word share %v too flat for Zipf", float64(top)/float64(total))
	}
	// different seed differs
	c := Text(2, 100, 10, 50)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical text")
	}
}

func TestPixels(t *testing.T) {
	px := Pixels(1, 1000)
	if len(px) != 1000 {
		t.Fatalf("%d pixels", len(px))
	}
	// gradient: early pixels darker red than late ones on average
	var early, late float64
	for i := 0; i < 100; i++ {
		early += float64(px[i].R)
		late += float64(px[900+i].R)
	}
	if early >= late {
		t.Errorf("red gradient missing: early %v late %v", early/100, late/100)
	}
}

func TestVectors(t *testing.T) {
	vs := Vectors(1, 200, 8, 4)
	if len(vs) != 200 || len(vs[0]) != 8 {
		t.Fatalf("shape %dx%d", len(vs), len(vs[0]))
	}
	// clustered: variance of points is larger than within-cluster noise
	var mean [8]float64
	for _, v := range vs {
		for d, x := range v {
			mean[d] += x
		}
	}
	var varSum float64
	for d := range mean {
		mean[d] /= 200
	}
	for _, v := range vs {
		for d, x := range v {
			varSum += (x - mean[d]) * (x - mean[d])
		}
	}
	if varSum/200/8 < 2 {
		t.Errorf("variance %v too small for clustered data", varSum/200/8)
	}
}

func TestPoints(t *testing.T) {
	ps := Points(1, 500, 2.0, 1.0, 0.1)
	if len(ps) != 500 {
		t.Fatalf("%d points", len(ps))
	}
	// least-squares slope close to 2
	var sx, sy, sxx, sxy float64
	for _, p := range ps {
		sx += p.X
		sy += p.Y
		sxx += p.X * p.X
		sxy += p.X * p.Y
	}
	n := float64(len(ps))
	slope := (n*sxy - sx*sy) / (n*sxx - sx*sx)
	if slope < 1.99 || slope > 2.01 {
		t.Errorf("recovered slope %v, want ~2", slope)
	}
}

func TestMatrix(t *testing.T) {
	m := Matrix(1, 5, 7)
	if len(m) != 5 || len(m[0]) != 7 {
		t.Fatalf("shape %dx%d", len(m), len(m[0]))
	}
	for _, row := range m {
		for _, v := range row {
			if v < -1 || v >= 1 {
				t.Fatalf("entry %v out of [-1,1)", v)
			}
		}
	}
	m2 := Matrix(1, 5, 7)
	for r := range m {
		for c := range m[r] {
			if m[r][c] != m2[r][c] {
				t.Fatal("Matrix not deterministic")
			}
		}
	}
}
