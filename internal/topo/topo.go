// Package topo builds the network topologies the paper compares:
//
//   - the conventional 8x8 mesh NoC baseline, and
//   - the small-world wireline fabric of the WiNoC (Section 5): links laid
//     out with a power-law wiring-cost distribution (Petermann & De Los
//     Rios), an average of ⟨k⟩ = 4 connections per switch split into
//     ⟨k_intra⟩ intra-VFI-cluster and ⟨k_inter⟩ inter-cluster connections,
//     a per-switch port cap k_max, guaranteed cluster connectivity, and
//     inter-cluster link counts proportional to inter-VFI traffic;
//   - the mm-wave wireless overlay (Section 6): 12 wireless interfaces
//     (WIs), three per 16-core cluster, on three non-overlapping channels;
//     WIs sharing a channel form single-hop wireless links arbitrated by a
//     token MAC (modelled in internal/noc).
//
// Topologies are pure structure; routing, contention and energy live in
// internal/noc and internal/energy.
package topo

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"wivfi/internal/platform"
)

// LinkType distinguishes wireline from wireless links.
type LinkType int

const (
	Wireline LinkType = iota
	Wireless
)

// Link is one directed edge of the topology graph. Links are stored in both
// directions (the fabric is symmetric).
type Link struct {
	To       int
	Type     LinkType
	LengthMM float64 // physical length; 0 for wireless
	Channel  int     // wireless channel id; -1 for wireline
}

// Topology is a switch-level interconnect graph over the chip's tiles.
type Topology struct {
	Chip platform.Chip
	Adj  [][]Link
	// WIs lists switch ids hosting a wireless interface, and ChannelOf maps
	// each of them to its channel. Empty for pure-wireline fabrics.
	WIs       []int
	ChannelOf map[int]int
	// Name labels the topology in reports ("mesh", "winoc", ...).
	Name string
}

// NumSwitches returns the number of switches (= tiles = cores).
func (t *Topology) NumSwitches() int { return len(t.Adj) }

// Degree returns the number of inter-switch links at switch s (the local
// core port is not counted, matching the paper's ⟨k⟩ accounting).
func (t *Topology) Degree(s int) int { return len(t.Adj[s]) }

// AvgDegree returns the mean switch degree.
func (t *Topology) AvgDegree() float64 {
	var sum int
	for s := range t.Adj {
		sum += len(t.Adj[s])
	}
	return float64(sum) / float64(len(t.Adj))
}

// MaxDegree returns the maximum switch degree.
func (t *Topology) MaxDegree() int {
	var max int
	for s := range t.Adj {
		if len(t.Adj[s]) > max {
			max = len(t.Adj[s])
		}
	}
	return max
}

// HasLink reports whether a direct link a->b exists.
func (t *Topology) HasLink(a, b int) bool {
	for _, l := range t.Adj[a] {
		if l.To == b {
			return true
		}
	}
	return false
}

// addBidirectional inserts the link in both directions.
func (t *Topology) addBidirectional(a, b int, typ LinkType, lengthMM float64, channel int) {
	t.Adj[a] = append(t.Adj[a], Link{To: b, Type: typ, LengthMM: lengthMM, Channel: channel})
	t.Adj[b] = append(t.Adj[b], Link{To: a, Type: typ, LengthMM: lengthMM, Channel: channel})
}

// Connected reports whether every switch can reach every other switch.
func (t *Topology) Connected() bool {
	n := t.NumSwitches()
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, l := range t.Adj[s] {
			if !seen[l.To] {
				seen[l.To] = true
				count++
				stack = append(stack, l.To)
			}
		}
	}
	return count == n
}

// Validate checks structural invariants: in-range endpoints, symmetric
// links, no self-loops, full connectivity.
func (t *Topology) Validate() error {
	n := t.NumSwitches()
	if n != t.Chip.NumCores() {
		return fmt.Errorf("topo: %d switches for %d tiles", n, t.Chip.NumCores())
	}
	for s, links := range t.Adj {
		for _, l := range links {
			if l.To < 0 || l.To >= n {
				return fmt.Errorf("topo: switch %d links to out-of-range %d", s, l.To)
			}
			if l.To == s {
				return fmt.Errorf("topo: self-loop at switch %d", s)
			}
			back := false
			for _, r := range t.Adj[l.To] {
				if r.To == s && r.Type == l.Type && r.Channel == l.Channel {
					back = true
					break
				}
			}
			if !back {
				return fmt.Errorf("topo: asymmetric link %d->%d", s, l.To)
			}
		}
	}
	if !t.Connected() {
		return fmt.Errorf("topo: graph not connected")
	}
	return nil
}

// Mesh builds the conventional 2D mesh baseline over the chip grid.
func Mesh(chip platform.Chip) *Topology {
	t := &Topology{Chip: chip, Adj: make([][]Link, chip.NumCores()), Name: "mesh", ChannelOf: map[int]int{}}
	for r := 0; r < chip.Rows; r++ {
		for c := 0; c < chip.Cols; c++ {
			id := chip.ID(r, c)
			if c+1 < chip.Cols {
				t.addBidirectional(id, chip.ID(r, c+1), Wireline, chip.TileMM, -1)
			}
			if r+1 < chip.Rows {
				t.addBidirectional(id, chip.ID(r+1, c), Wireline, chip.TileMM, -1)
			}
		}
	}
	return t
}

// Quadrants returns the four physically contiguous 4x4 tile groups that
// realize the VFI voltage domains on the 8x8 chip: quadrant 0 is top-left,
// 1 top-right, 2 bottom-left, 3 bottom-right. Threads of VFI cluster j are
// mapped onto the tiles of quadrant j (Section 6 thread mapping).
func Quadrants(chip platform.Chip) [][]int {
	if chip.Rows%2 != 0 || chip.Cols%2 != 0 {
		panic("topo: quadrants need even grid dimensions")
	}
	hr, hc := chip.Rows/2, chip.Cols/2
	quads := make([][]int, 4)
	for r := 0; r < chip.Rows; r++ {
		for c := 0; c < chip.Cols; c++ {
			q := 0
			if r >= hr {
				q += 2
			}
			if c >= hc {
				q++
			}
			quads[q] = append(quads[q], chip.ID(r, c))
		}
	}
	return quads
}

// QuadrantOf returns, for each tile, the index of its quadrant.
func QuadrantOf(chip platform.Chip) []int {
	out := make([]int, chip.NumCores())
	for q, tiles := range Quadrants(chip) {
		for _, id := range tiles {
			out[id] = q
		}
	}
	return out
}

// SmallWorldConfig parameterizes the WiNoC wireline fabric.
type SmallWorldConfig struct {
	// KIntra and KInter are ⟨k_intra⟩ and ⟨k_inter⟩; KIntra+KInter = ⟨k⟩.
	// The paper fixes ⟨k⟩ = 4 and finds (3, 1) superior to (2, 2).
	KIntra, KInter float64
	// KMax caps the number of inter-switch ports at any switch.
	KMax int
	// Alpha is the power-law exponent: link probability ∝ distance^(-Alpha).
	Alpha float64
	// InterTraffic[a][b] is the traffic between clusters a and b, used to
	// apportion inter-cluster links. A nil matrix splits links evenly.
	InterTraffic [][]float64
	// Seed makes construction deterministic.
	Seed int64
}

// DefaultSmallWorldConfig returns the configuration the paper settles on:
// (⟨k_intra⟩, ⟨k_inter⟩) = (3, 1), k_max = 7, α = 2.
func DefaultSmallWorldConfig() SmallWorldConfig {
	return SmallWorldConfig{KIntra: 3, KInter: 1, KMax: 7, Alpha: 2, Seed: 1}
}

// MinKIntra returns the smallest feasible ⟨k_intra⟩ for the given cluster
// size: a connected cluster of c switches needs c-1 links, i.e. an average
// degree of 2(c-1)/c. For the paper's 16-switch clusters this is 1.875,
// matching Section 7.2.
func MinKIntra(clusterSize int) float64 {
	return 2 * float64(clusterSize-1) / float64(clusterSize)
}

// SmallWorld builds the WiNoC wireline fabric over the chip's quadrant
// clusters — the paper's four-island layout. It requires even grid
// dimensions (so quadrants exist); other island geometries go through
// SmallWorldRegions with an explicit partition.
func SmallWorld(chip platform.Chip, cfg SmallWorldConfig) (*Topology, error) {
	if err := ValidateChip(chip); err != nil {
		return nil, err
	}
	if chip.Rows%2 != 0 || chip.Cols%2 != 0 {
		return nil, fmt.Errorf("topo: quadrants need even grid dimensions, chip is %dx%d", chip.Rows, chip.Cols)
	}
	return SmallWorldRegions(chip, Quadrants(chip), cfg)
}

// SmallWorldRegions builds the WiNoC wireline fabric over an arbitrary
// cluster partition (one region per VFI island, regions possibly unequal).
// The construction follows Section 5:
//
//  1. per cluster, a short-link-biased random spanning tree guarantees
//     connectivity, then extra intra-cluster links are sampled from the
//     power-law distribution until the cluster reaches ⟨k_intra⟩;
//  2. inter-cluster link counts are split across cluster pairs in
//     proportion to their share of inter-cluster traffic, endpoints again
//     sampled power-law;
//
// always respecting the per-switch k_max port cap.
func SmallWorldRegions(chip platform.Chip, regions [][]int, cfg SmallWorldConfig) (*Topology, error) {
	if len(regions) < 2 {
		return nil, fmt.Errorf("topo: small-world fabric needs at least 2 clusters, got %d", len(regions))
	}
	for q, tiles := range regions {
		if len(tiles) < 2 {
			return nil, fmt.Errorf("topo: cluster %d has %d tiles; small-world clusters need at least 2", q, len(tiles))
		}
		if cfg.KIntra < MinKIntra(len(tiles)) {
			return nil, fmt.Errorf("topo: k_intra %.3f below connectivity minimum %.3f for cluster %d (%d tiles)",
				cfg.KIntra, MinKIntra(len(tiles)), q, len(tiles))
		}
	}
	if cfg.KMax < 2 {
		return nil, fmt.Errorf("topo: k_max %d too small", cfg.KMax)
	}
	if cfg.Alpha <= 0 {
		return nil, fmt.Errorf("topo: alpha must be positive, got %v", cfg.Alpha)
	}
	t := &Topology{Chip: chip, Adj: make([][]Link, chip.NumCores()), Name: "winoc-wireline", ChannelOf: map[int]int{}}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Step 1: intra-cluster networks, link budget proportional to size.
	for _, tiles := range regions {
		intraLinks := int(math.Round(cfg.KIntra * float64(len(tiles)) / 2))
		if err := buildCluster(t, tiles, intraLinks, cfg, rng); err != nil {
			return nil, err
		}
	}

	// Step 2: inter-cluster links apportioned by traffic share.
	totalInter := int(math.Round(cfg.KInter * float64(chip.NumCores()) / 2))
	pairCounts := apportionInterLinks(cfg.InterTraffic, len(regions), totalInter)
	var pairs [][2]int
	for pair := range pairCounts {
		pairs = append(pairs, pair)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	for _, pair := range pairs {
		if err := addInterLinks(t, regions[pair[0]], regions[pair[1]], pairCounts[pair], cfg, rng); err != nil {
			return nil, err
		}
	}
	if !t.Connected() {
		// With at least one link per cluster pair this cannot happen, but
		// guard anyway: repair by linking cluster centroids.
		return nil, fmt.Errorf("topo: small-world construction left graph disconnected")
	}
	return t, nil
}

// buildCluster wires one cluster: spanning tree first, then power-law extras.
func buildCluster(t *Topology, tiles []int, linkBudget int, cfg SmallWorldConfig, rng *rand.Rand) error {
	// Spanning tree: grow from a random start, attaching each new node via a
	// power-law-sampled edge to the already-connected set. Tree membership
	// is kept in insertion order so construction is deterministic per seed.
	order := append([]int(nil), tiles...)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	tree := make([]int, 0, len(order))
	tree = append(tree, order[0])
	links := 0
	for _, v := range order[1:] {
		// candidates: tree members with spare ports
		var cands []int
		var weights []float64
		for _, u := range tree {
			if t.Degree(u) < cfg.KMax {
				cands = append(cands, u)
				weights = append(weights, linkWeight(t.Chip, u, v, cfg.Alpha))
			}
		}
		if len(cands) == 0 {
			return fmt.Errorf("topo: no spare ports while building cluster spanning tree (k_max=%d)", cfg.KMax)
		}
		u := cands[weightedPick(rng, weights)]
		t.addBidirectional(u, v, Wireline, t.Chip.EuclideanMM(u, v), -1)
		tree = append(tree, v)
		links++
	}
	// Extra links up to the budget.
	for attempts := 0; links < linkBudget && attempts < 10000; attempts++ {
		u := tiles[rng.Intn(len(tiles))]
		v := tiles[rng.Intn(len(tiles))]
		if u == v || t.HasLink(u, v) || t.Degree(u) >= cfg.KMax || t.Degree(v) >= cfg.KMax {
			continue
		}
		if rng.Float64() < acceptProb(t.Chip, u, v, cfg.Alpha) {
			t.addBidirectional(u, v, Wireline, t.Chip.EuclideanMM(u, v), -1)
			links++
		}
	}
	return nil
}

// apportionInterLinks splits totalInter links across cluster pairs in
// proportion to inter-cluster traffic, guaranteeing at least one link per
// pair so no pair of clusters depends on a third for connectivity.
func apportionInterLinks(interTraffic [][]float64, m, totalInter int) map[[2]int]int {
	type pair struct {
		a, b int
		w    float64
	}
	var pairs []pair
	var totalW float64
	for a := 0; a < m; a++ {
		for b := a + 1; b < m; b++ {
			w := 1.0
			if interTraffic != nil {
				w = interTraffic[a][b] + interTraffic[b][a]
			}
			pairs = append(pairs, pair{a, b, w})
			totalW += w
		}
	}
	counts := map[[2]int]int{}
	if totalW == 0 {
		totalW = float64(len(pairs))
		for i := range pairs {
			pairs[i].w = 1
		}
	}
	assigned := 0
	for _, p := range pairs {
		c := int(math.Floor(p.w / totalW * float64(totalInter)))
		if c < 1 {
			c = 1
		}
		counts[[2]int{p.a, p.b}] = c
		assigned += c
	}
	// Distribute any remainder to the heaviest pairs, deterministically.
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].w != pairs[j].w {
			return pairs[i].w > pairs[j].w
		}
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})
	for i := 0; assigned < totalInter; i = (i + 1) % len(pairs) {
		counts[[2]int{pairs[i].a, pairs[i].b}]++
		assigned++
	}
	return counts
}

// addInterLinks adds count links between two clusters, endpoints sampled
// with the power-law acceptance rule under the port cap.
func addInterLinks(t *Topology, tilesA, tilesB []int, count int, cfg SmallWorldConfig, rng *rand.Rand) error {
	added := 0
	for attempts := 0; added < count && attempts < 20000; attempts++ {
		u := tilesA[rng.Intn(len(tilesA))]
		v := tilesB[rng.Intn(len(tilesB))]
		if t.HasLink(u, v) || t.Degree(u) >= cfg.KMax || t.Degree(v) >= cfg.KMax {
			continue
		}
		if rng.Float64() < acceptProb(t.Chip, u, v, cfg.Alpha) {
			t.addBidirectional(u, v, Wireline, t.Chip.EuclideanMM(u, v), -1)
			added++
		}
	}
	if added == 0 && count > 0 {
		return fmt.Errorf("topo: could not place any inter-cluster link (port caps too tight)")
	}
	return nil
}

// linkWeight returns the unnormalized power-law probability weight for a
// link between tiles u and v.
func linkWeight(chip platform.Chip, u, v int, alpha float64) float64 {
	d := chip.EuclideanMM(u, v) / chip.TileMM // in tile units, >= 1
	if d < 1 {
		d = 1
	}
	return math.Pow(d, -alpha)
}

// acceptProb is linkWeight normalized to at most 1 (distance of one tile).
func acceptProb(chip platform.Chip, u, v int, alpha float64) float64 {
	return linkWeight(chip, u, v, alpha)
}

// weightedPick returns an index sampled in proportion to weights.
func weightedPick(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total == 0 {
		return rng.Intn(len(weights))
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return i
		}
	}
	return len(weights) - 1
}

// DisableWI removes the wireless interface at switch s — all of its
// wireless links disappear and the switch reverts to a plain wireline
// switch. mm-wave transceivers are the least mature component of a WiNoC,
// so graceful degradation under WI failure is a standard robustness
// question (the wireline small-world fabric keeps the network connected by
// construction). Returns an error when s hosts no WI.
func DisableWI(t *Topology, s int) error {
	if _, ok := t.ChannelOf[s]; !ok {
		return fmt.Errorf("topo: switch %d hosts no wireless interface", s)
	}
	// drop wireless links incident to s everywhere
	for u := range t.Adj {
		kept := t.Adj[u][:0]
		for _, l := range t.Adj[u] {
			if l.Type == Wireless && (u == s || l.To == s) {
				continue
			}
			kept = append(kept, l)
		}
		t.Adj[u] = kept
	}
	delete(t.ChannelOf, s)
	wis := t.WIs[:0]
	for _, w := range t.WIs {
		if w != s {
			wis = append(wis, w)
		}
	}
	t.WIs = wis
	return nil
}

// NumChannels is the number of non-overlapping mm-wave channels available
// on-chip (Deb et al. 2013 demonstrate three).
const NumChannels = 3

// WIsPerCluster is the number of wireless interfaces per VFI cluster: one
// per channel, giving the optimum total of 12 WIs for a 64-core system
// (Wettin et al. 2013).
const WIsPerCluster = NumChannels

// AddWireless overlays wireless interfaces on the topology. placement maps
// cluster index -> the WIsPerCluster switch ids receiving a WI; the i-th WI
// of every cluster is tuned to channel i, so each channel connects exactly
// one WI per cluster. WIs sharing a channel are linked pairwise (single-hop
// mm-wave links); the token MAC serializing those links is modelled in
// internal/noc.
func AddWireless(t *Topology, placement [][]int) error {
	if len(t.WIs) > 0 {
		return fmt.Errorf("topo: topology already has wireless interfaces")
	}
	byChannel := make([][]int, NumChannels)
	seen := map[int]bool{}
	for cluster, switches := range placement {
		if len(switches) != WIsPerCluster {
			return fmt.Errorf("topo: cluster %d has %d WIs, want %d", cluster, len(switches), WIsPerCluster)
		}
		for ch, s := range switches {
			if s < 0 || s >= t.NumSwitches() {
				return fmt.Errorf("topo: WI switch %d out of range", s)
			}
			if seen[s] {
				return fmt.Errorf("topo: switch %d hosts two WIs", s)
			}
			seen[s] = true
			byChannel[ch] = append(byChannel[ch], s)
			t.WIs = append(t.WIs, s)
			t.ChannelOf[s] = ch
		}
	}
	for ch, members := range byChannel {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				t.addBidirectional(members[i], members[j], Wireless, 0, ch)
			}
		}
	}
	sort.Ints(t.WIs)
	t.Name = "winoc"
	return nil
}
