package topo

import (
	"reflect"
	"testing"

	"wivfi/internal/platform"
)

func chip(rows, cols int) platform.Chip {
	return platform.Chip{Rows: rows, Cols: cols, TileMM: 2.5}
}

// checkPartition asserts the structural invariants every partition must
// satisfy: exact region sizes, every tile assigned exactly once, and
// physical contiguity of each region under mesh adjacency.
func checkPartition(t *testing.T, c platform.Chip, sizes []int, regions [][]int) {
	t.Helper()
	if len(regions) != len(sizes) {
		t.Fatalf("got %d regions, want %d", len(regions), len(sizes))
	}
	seen := make([]bool, c.NumCores())
	for j, tiles := range regions {
		if len(tiles) != sizes[j] {
			t.Errorf("region %d has %d tiles, want %d", j, len(tiles), sizes[j])
		}
		for _, id := range tiles {
			if id < 0 || id >= c.NumCores() {
				t.Fatalf("region %d holds out-of-range tile %d", j, id)
			}
			if seen[id] {
				t.Fatalf("tile %d assigned twice", id)
			}
			seen[id] = true
		}
		if !connected(c, tiles) {
			t.Errorf("region %d is not contiguous: %v", j, tiles)
		}
	}
	for id, ok := range seen {
		if !ok {
			t.Errorf("tile %d unassigned", id)
		}
	}
}

// connected reports whether the tiles form one connected component under
// 4-neighbor mesh adjacency.
func connected(c platform.Chip, tiles []int) bool {
	if len(tiles) == 0 {
		return false
	}
	in := map[int]bool{}
	for _, id := range tiles {
		in[id] = true
	}
	frontier := []int{tiles[0]}
	visited := map[int]bool{tiles[0]: true}
	for len(frontier) > 0 {
		id := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		r, cc := c.Coord(id)
		for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			nr, nc := r+d[0], cc+d[1]
			if nr < 0 || nr >= c.Rows || nc < 0 || nc >= c.Cols {
				continue
			}
			nid := c.ID(nr, nc)
			if in[nid] && !visited[nid] {
				visited[nid] = true
				frontier = append(frontier, nid)
			}
		}
	}
	return len(visited) == len(tiles)
}

// TestPartitionMatchesQuadrantsOnDefaults pins the compatibility contract:
// four equal islands on the paper's 8x8 chip reproduce Quadrants exactly,
// region for region, tile for tile.
func TestPartitionMatchesQuadrantsOnDefaults(t *testing.T) {
	c := chip(8, 8)
	got, err := EqualPartition(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := Quadrants(c); !reflect.DeepEqual(got, want) {
		t.Errorf("EqualPartition(8x8, 4) = %v, want Quadrants %v", got, want)
	}
}

func TestPartitionNonSquareAndOddGrids(t *testing.T) {
	cases := []struct {
		rows, cols int
		sizes      []int
	}{
		{4, 6, []int{6, 6, 6, 6}},       // blocks on a non-square grid
		{4, 4, []int{8, 8}},             // two equal halves
		{6, 6, []int{12, 12, 12}},       // 3 does not tile 6x6 as blocks -> snake
		{5, 5, []int{7, 9, 9}},          // odd grid, unequal sizes -> snake
		{3, 7, []int{21}},               // single region is the whole chip
		{12, 12, []int{16, 128}},        // tiny island next to a huge one
		{2, 2, []int{1, 1, 1, 1}},       // minimum mesh, one tile per region
		{8, 8, []int{16, 16, 32}},       // unequal split of the paper chip
		{16, 16, []int{64, 64, 64, 64}}, // larger mesh, quadrant-shaped
	}
	for _, tc := range cases {
		c := chip(tc.rows, tc.cols)
		regions, err := Partition(c, tc.sizes)
		if err != nil {
			t.Errorf("Partition(%dx%d, %v): %v", tc.rows, tc.cols, tc.sizes, err)
			continue
		}
		checkPartition(t, c, tc.sizes, regions)
	}
}

// TestPartitionRejectsInfeasibleSpecs pins the errors-not-panics contract
// for the specs the sweep generator can emit before its own filtering.
func TestPartitionRejectsInfeasibleSpecs(t *testing.T) {
	c := chip(4, 4)
	cases := []struct {
		name  string
		sizes []int
	}{
		{"no regions", nil},
		{"zero size", []int{0, 16}},
		{"negative size", []int{-4, 20}},
		{"sum too small", []int{4, 4}},
		{"sum too large", []int{12, 12}},
	}
	for _, tc := range cases {
		if _, err := Partition(c, tc.sizes); err == nil {
			t.Errorf("%s: Partition accepted %v", tc.name, tc.sizes)
		}
	}
	if _, err := Partition(chip(0, 4), []int{4}); err == nil {
		t.Error("Partition accepted a zero-row chip")
	}
	if _, err := EqualPartition(chip(5, 5), 4); err == nil {
		t.Error("EqualPartition accepted 25 tiles into 4 regions")
	}
	if _, err := EqualPartition(c, 0); err == nil {
		t.Error("EqualPartition accepted zero regions")
	}
}

func TestRegionOfInvertsPartition(t *testing.T) {
	c := chip(6, 4)
	sizes := []int{5, 9, 10}
	regions, err := Partition(c, sizes)
	if err != nil {
		t.Fatal(err)
	}
	of := RegionOf(c.NumCores(), regions)
	for j, tiles := range regions {
		for _, id := range tiles {
			if of[id] != j {
				t.Errorf("RegionOf[%d] = %d, want %d", id, of[id], j)
			}
		}
	}
}

func TestPartitionForAssign(t *testing.T) {
	c := chip(4, 4)
	assign := make([]int, 16)
	for i := range assign {
		assign[i] = i % 4 // 4 islands x 4 cores
	}
	regions, err := PartitionForAssign(c, assign)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, c, []int{4, 4, 4, 4}, regions)

	if _, err := PartitionForAssign(c, make([]int, 9)); err == nil {
		t.Error("accepted an assignment shorter than the chip")
	}
	if _, err := PartitionForAssign(c, append(make([]int, 15), -1)); err == nil {
		t.Error("accepted a negative island label")
	}
	gap := make([]int, 16)
	gap[0] = 2 // labels {0, 2}: island 1 never appears
	if _, err := PartitionForAssign(c, gap); err == nil {
		t.Error("accepted an assignment with an empty island label")
	}
}
