package topo

import (
	"math"
	"testing"

	"wivfi/internal/platform"
)

func TestMeshStructure(t *testing.T) {
	chip := platform.DefaultChip()
	m := Mesh(chip)
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// 8x8 mesh has 2*8*7 = 112 bidirectional links -> avg degree 3.5
	if got := m.AvgDegree(); math.Abs(got-3.5) > 1e-12 {
		t.Errorf("AvgDegree = %v, want 3.5", got)
	}
	if got := m.MaxDegree(); got != 4 {
		t.Errorf("MaxDegree = %d, want 4", got)
	}
	// corner has 2 links, edge 3, interior 4
	if got := m.Degree(0); got != 2 {
		t.Errorf("corner degree = %d, want 2", got)
	}
	if got := m.Degree(1); got != 3 {
		t.Errorf("edge degree = %d, want 3", got)
	}
	if got := m.Degree(9); got != 4 {
		t.Errorf("interior degree = %d, want 4", got)
	}
	// all links one tile long
	for s, links := range m.Adj {
		for _, l := range links {
			if l.Type != Wireline || math.Abs(l.LengthMM-chip.TileMM) > 1e-12 {
				t.Fatalf("mesh link %d->%d: %+v", s, l.To, l)
			}
		}
	}
}

func TestQuadrants(t *testing.T) {
	chip := platform.DefaultChip()
	quads := Quadrants(chip)
	if len(quads) != 4 {
		t.Fatalf("quadrant count = %d", len(quads))
	}
	for q, tiles := range quads {
		if len(tiles) != 16 {
			t.Errorf("quadrant %d size = %d, want 16", q, len(tiles))
		}
	}
	// spot checks: tile 0 top-left, 7 top-right, 56 bottom-left, 63 bottom-right
	of := QuadrantOf(chip)
	if of[0] != 0 || of[7] != 1 || of[56] != 2 || of[63] != 3 {
		t.Errorf("quadrant corners = %d,%d,%d,%d", of[0], of[7], of[56], of[63])
	}
	// QuadrantOf consistent with Quadrants
	for q, tiles := range quads {
		for _, id := range tiles {
			if of[id] != q {
				t.Fatalf("tile %d: QuadrantOf=%d but listed in quadrant %d", id, of[id], q)
			}
		}
	}
}

func TestMinKIntra(t *testing.T) {
	if got := MinKIntra(16); math.Abs(got-1.875) > 1e-12 {
		t.Errorf("MinKIntra(16) = %v, want 1.875 (paper Section 7.2)", got)
	}
}

func TestSmallWorldStructure(t *testing.T) {
	chip := platform.DefaultChip()
	cfg := DefaultSmallWorldConfig()
	tp, err := SmallWorld(chip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tp.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// ⟨k⟩ target is 4: (3+1). Construction rounds per cluster/pair, allow
	// a little slack but require the average close to 4 and capped by k_max.
	if got := tp.AvgDegree(); got < 3.5 || got > 4.5 {
		t.Errorf("AvgDegree = %v, want ~4", got)
	}
	if got := tp.MaxDegree(); got > cfg.KMax {
		t.Errorf("MaxDegree = %d exceeds k_max %d", got, cfg.KMax)
	}
	// every cluster internally connected (ignoring other clusters)
	of := QuadrantOf(chip)
	for q, tiles := range Quadrants(chip) {
		if !subgraphConnected(tp, tiles, of, q) {
			t.Errorf("cluster %d not internally connected", q)
		}
	}
}

// subgraphConnected checks connectivity of a cluster using only
// intra-cluster links.
func subgraphConnected(tp *Topology, tiles []int, of []int, q int) bool {
	seen := map[int]bool{tiles[0]: true}
	stack := []int{tiles[0]}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, l := range tp.Adj[s] {
			if of[l.To] == q && !seen[l.To] {
				seen[l.To] = true
				stack = append(stack, l.To)
			}
		}
	}
	return len(seen) == len(tiles)
}

func TestSmallWorldIntraInterSplit(t *testing.T) {
	chip := platform.DefaultChip()
	cfg := DefaultSmallWorldConfig()
	tp, err := SmallWorld(chip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	of := QuadrantOf(chip)
	var intra, inter int
	for s, links := range tp.Adj {
		for _, l := range links {
			if s < l.To { // count each bidirectional link once
				if of[s] == of[l.To] {
					intra++
				} else {
					inter++
				}
			}
		}
	}
	// (3,1): 4 clusters × 24 intra links = 96; 32 inter links.
	if intra != 96 {
		t.Errorf("intra links = %d, want 96 for k_intra=3", intra)
	}
	if inter != 32 {
		t.Errorf("inter links = %d, want 32 for k_inter=1", inter)
	}
}

func TestSmallWorldTrafficProportionalInterLinks(t *testing.T) {
	chip := platform.DefaultChip()
	cfg := DefaultSmallWorldConfig()
	// clusters 0 and 1 exchange nearly all inter-cluster traffic
	cfg.InterTraffic = [][]float64{
		{0, 100, 1, 1},
		{100, 0, 1, 1},
		{1, 1, 0, 1},
		{1, 1, 1, 0},
	}
	tp, err := SmallWorld(chip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	of := QuadrantOf(chip)
	counts := map[[2]int]int{}
	for s, links := range tp.Adj {
		for _, l := range links {
			if s < l.To && of[s] != of[l.To] {
				a, b := of[s], of[l.To]
				if a > b {
					a, b = b, a
				}
				counts[[2]int{a, b}]++
			}
		}
	}
	// pair (0,1) must dominate, every pair gets at least one link
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			if counts[[2]int{a, b}] == 0 {
				t.Errorf("cluster pair (%d,%d) has no link", a, b)
			}
		}
	}
	heavy := counts[[2]int{0, 1}]
	for pair, c := range counts {
		if pair != [2]int{0, 1} && c >= heavy {
			t.Errorf("pair %v has %d links >= heavy pair's %d", pair, c, heavy)
		}
	}
	if heavy < 10 {
		t.Errorf("heavy pair has only %d of 32 inter links", heavy)
	}
}

func TestSmallWorldDeterministicForSeed(t *testing.T) {
	chip := platform.DefaultChip()
	cfg := DefaultSmallWorldConfig()
	a, err := SmallWorld(chip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SmallWorld(chip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := range a.Adj {
		if len(a.Adj[s]) != len(b.Adj[s]) {
			t.Fatalf("degree mismatch at switch %d", s)
		}
		for i := range a.Adj[s] {
			if a.Adj[s][i] != b.Adj[s][i] {
				t.Fatalf("link mismatch at switch %d index %d", s, i)
			}
		}
	}
}

func TestSmallWorldRejectsInfeasibleKIntra(t *testing.T) {
	cfg := DefaultSmallWorldConfig()
	cfg.KIntra = 1.0 // below the 1.875 connectivity bound for 16-node clusters
	if _, err := SmallWorld(platform.DefaultChip(), cfg); err == nil {
		t.Error("k_intra below connectivity minimum accepted")
	}
}

func TestSmallWorldRejectsBadParams(t *testing.T) {
	cfg := DefaultSmallWorldConfig()
	cfg.KMax = 1
	if _, err := SmallWorld(platform.DefaultChip(), cfg); err == nil {
		t.Error("k_max=1 accepted")
	}
	cfg = DefaultSmallWorldConfig()
	cfg.Alpha = 0
	if _, err := SmallWorld(platform.DefaultChip(), cfg); err == nil {
		t.Error("alpha=0 accepted")
	}
}

func TestSmallWorld22Variant(t *testing.T) {
	cfg := DefaultSmallWorldConfig()
	cfg.KIntra, cfg.KInter = 2, 2
	tp, err := SmallWorld(platform.DefaultChip(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tp.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	of := QuadrantOf(tp.Chip)
	var intra, inter int
	for s, links := range tp.Adj {
		for _, l := range links {
			if s < l.To {
				if of[s] == of[l.To] {
					intra++
				} else {
					inter++
				}
			}
		}
	}
	if intra != 64 { // 4 clusters × 16
		t.Errorf("intra links = %d, want 64 for k_intra=2", intra)
	}
	if inter != 64 {
		t.Errorf("inter links = %d, want 64 for k_inter=2", inter)
	}
}

func wiPlacementCenters(chip platform.Chip) [][]int {
	// three distinct switches near the centre of each quadrant
	return [][]int{
		{chip.ID(1, 1), chip.ID(1, 2), chip.ID(2, 1)},
		{chip.ID(1, 5), chip.ID(1, 6), chip.ID(2, 6)},
		{chip.ID(5, 1), chip.ID(6, 1), chip.ID(6, 2)},
		{chip.ID(5, 6), chip.ID(6, 6), chip.ID(6, 5)},
	}
}

func TestAddWireless(t *testing.T) {
	chip := platform.DefaultChip()
	tp, err := SmallWorld(chip, DefaultSmallWorldConfig())
	if err != nil {
		t.Fatal(err)
	}
	placement := wiPlacementCenters(chip)
	if err := AddWireless(tp, placement); err != nil {
		t.Fatal(err)
	}
	if err := tp.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(tp.WIs) != 12 {
		t.Fatalf("WI count = %d, want 12", len(tp.WIs))
	}
	// each channel hosts 4 WIs, one per cluster; channel members fully linked
	byChannel := map[int][]int{}
	for _, s := range tp.WIs {
		byChannel[tp.ChannelOf[s]] = append(byChannel[tp.ChannelOf[s]], s)
	}
	if len(byChannel) != NumChannels {
		t.Fatalf("channel count = %d, want %d", len(byChannel), NumChannels)
	}
	for ch, members := range byChannel {
		if len(members) != 4 {
			t.Errorf("channel %d has %d WIs, want 4", ch, len(members))
		}
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if !tp.HasLink(members[i], members[j]) {
					t.Errorf("channel %d WIs %d,%d not linked", ch, members[i], members[j])
				}
			}
		}
	}
	// wireless links shrink the network diameter below the pure-wireline one
	// (checked indirectly: a WI pair in opposite corners is now 1 hop)
	if !tp.HasLink(chip.ID(1, 1), chip.ID(5, 6)) {
		t.Error("cross-chip WIs on channel 0 should be directly linked")
	}
}

func TestAddWirelessRejectsBadPlacement(t *testing.T) {
	chip := platform.DefaultChip()
	tp, _ := SmallWorld(chip, DefaultSmallWorldConfig())
	// wrong WI count per cluster
	if err := AddWireless(tp, [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}}); err == nil {
		t.Error("short placement accepted")
	}
	tp2, _ := SmallWorld(chip, DefaultSmallWorldConfig())
	dup := wiPlacementCenters(chip)
	dup[1][0] = dup[0][0] // duplicate switch
	if err := AddWireless(tp2, dup); err == nil {
		t.Error("duplicate WI switch accepted")
	}
	tp3, _ := SmallWorld(chip, DefaultSmallWorldConfig())
	if err := AddWireless(tp3, wiPlacementCenters(chip)); err != nil {
		t.Fatal(err)
	}
	if err := AddWireless(tp3, wiPlacementCenters(chip)); err == nil {
		t.Error("double AddWireless accepted")
	}
}

func TestWirelessLinksHaveChannelAndNoLength(t *testing.T) {
	chip := platform.DefaultChip()
	tp, _ := SmallWorld(chip, DefaultSmallWorldConfig())
	if err := AddWireless(tp, wiPlacementCenters(chip)); err != nil {
		t.Fatal(err)
	}
	sawWireless := false
	for _, links := range tp.Adj {
		for _, l := range links {
			switch l.Type {
			case Wireless:
				sawWireless = true
				if l.Channel < 0 || l.Channel >= NumChannels {
					t.Fatalf("wireless link with channel %d", l.Channel)
				}
				if l.LengthMM != 0 {
					t.Fatal("wireless link has a physical length")
				}
			case Wireline:
				if l.Channel != -1 {
					t.Fatal("wireline link carries a channel id")
				}
				if l.LengthMM <= 0 {
					t.Fatal("wireline link without length")
				}
			}
		}
	}
	if !sawWireless {
		t.Fatal("no wireless links present")
	}
}

func TestDisableWI(t *testing.T) {
	chip := platform.DefaultChip()
	tp, _ := SmallWorld(chip, DefaultSmallWorldConfig())
	if err := AddWireless(tp, wiPlacementCenters(chip)); err != nil {
		t.Fatal(err)
	}
	victim := tp.WIs[0]
	if err := DisableWI(tp, victim); err != nil {
		t.Fatal(err)
	}
	if err := tp.Validate(); err != nil {
		t.Fatalf("topology invalid after WI failure: %v", err)
	}
	if len(tp.WIs) != 11 {
		t.Errorf("WI count = %d, want 11", len(tp.WIs))
	}
	if _, ok := tp.ChannelOf[victim]; ok {
		t.Error("failed WI still registered on a channel")
	}
	for u, links := range tp.Adj {
		for _, l := range links {
			if l.Type == Wireless && (u == victim || l.To == victim) {
				t.Fatalf("wireless link %d<->%d survived the failure", u, l.To)
			}
		}
	}
	// double-failure of the same switch is an error
	if err := DisableWI(tp, victim); err == nil {
		t.Error("disabling a non-WI switch accepted")
	}
}

func TestDisableAllWIsLeavesWirelineFabric(t *testing.T) {
	chip := platform.DefaultChip()
	tp, _ := SmallWorld(chip, DefaultSmallWorldConfig())
	if err := AddWireless(tp, wiPlacementCenters(chip)); err != nil {
		t.Fatal(err)
	}
	for len(tp.WIs) > 0 {
		if err := DisableWI(tp, tp.WIs[0]); err != nil {
			t.Fatal(err)
		}
	}
	if err := tp.Validate(); err != nil {
		t.Fatalf("wireline fabric broken after total wireless loss: %v", err)
	}
	for _, links := range tp.Adj {
		for _, l := range links {
			if l.Type == Wireless {
				t.Fatal("orphan wireless link")
			}
		}
	}
}
