package topo

import (
	"fmt"

	"wivfi/internal/platform"
)

// This file generalizes the hardcoded 8x8/four-quadrant island geometry to
// arbitrary mesh sizes and (possibly unequal) island splits. A partition
// assigns every tile to exactly one physically contiguous region; region j
// realizes VFI island j. Two constructions are used:
//
//   - grid blocks, when every island has the same size and the chip grid
//     decomposes into an r x c arrangement of equal rectangular blocks.
//     Blocks are numbered row-major over the block grid, which reproduces
//     Quadrants exactly for four equal islands on even grids (0 top-left,
//     1 top-right, 2 bottom-left, 3 bottom-right) — the paper's layout;
//   - snake slicing otherwise: tiles are visited in boustrophedon order
//     (row 0 left-to-right, row 1 right-to-left, ...) and dealt to regions
//     in consecutive runs of the requested sizes, so every region is a
//     contiguous band even when sizes are unequal or do not tile the grid.
//
// All entry points validate and return errors — never panic — so callers
// exploring generated platform configurations get descriptive diagnostics
// for infeasible specs.

// ValidateChip checks that the chip grid can host a partitioned platform.
func ValidateChip(chip platform.Chip) error {
	if chip.Rows <= 0 || chip.Cols <= 0 {
		return fmt.Errorf("topo: chip needs positive dimensions, got %dx%d", chip.Rows, chip.Cols)
	}
	return nil
}

// Partition splits the chip's tiles into len(sizes) physically contiguous
// regions where region j holds exactly sizes[j] tiles. Equal sizes on a
// block-decomposable grid use the grid-block construction (region j is a
// rectangle); any other feasible spec falls back to snake slicing. The
// tile ids inside each region are in row-major scan order for grid blocks
// and in snake order otherwise.
func Partition(chip platform.Chip, sizes []int) ([][]int, error) {
	if err := ValidateChip(chip); err != nil {
		return nil, err
	}
	m := len(sizes)
	if m == 0 {
		return nil, fmt.Errorf("topo: partition needs at least one region")
	}
	total := 0
	equal := true
	for j, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("topo: region %d has non-positive size %d", j, s)
		}
		if s != sizes[0] {
			equal = false
		}
		total += s
	}
	if total != chip.NumCores() {
		return nil, fmt.Errorf("topo: region sizes sum to %d tiles, chip has %d", total, chip.NumCores())
	}
	if equal {
		if gr, gc, ok := blockGrid(chip, m); ok {
			return blockPartition(chip, gr, gc), nil
		}
	}
	return snakePartition(chip, sizes), nil
}

// EqualPartition splits the chip into m equal contiguous regions, erroring
// when the tile count is not divisible by m.
func EqualPartition(chip platform.Chip, m int) ([][]int, error) {
	if err := ValidateChip(chip); err != nil {
		return nil, err
	}
	if m <= 0 {
		return nil, fmt.Errorf("topo: need a positive region count, got %d", m)
	}
	n := chip.NumCores()
	if n%m != 0 {
		return nil, fmt.Errorf("topo: %d tiles not divisible into %d equal regions", n, m)
	}
	sizes := make([]int, m)
	for j := range sizes {
		sizes[j] = n / m
	}
	return Partition(chip, sizes)
}

// blockGrid searches for a gr x gc decomposition of the chip into m equal
// rectangular blocks, preferring the most square block shape. Returns
// ok=false when no factorization of m tiles the grid.
func blockGrid(chip platform.Chip, m int) (gr, gc int, ok bool) {
	bestScore := 1 << 30
	for r := 1; r <= m; r++ {
		if m%r != 0 {
			continue
		}
		c := m / r
		if chip.Rows%r != 0 || chip.Cols%c != 0 {
			continue
		}
		h, w := chip.Rows/r, chip.Cols/c
		score := h - w
		if score < 0 {
			score = -score
		}
		if score < bestScore {
			bestScore, gr, gc, ok = score, r, c, true
		}
	}
	return gr, gc, ok
}

// blockPartition lays out m = gr*gc equal rectangular regions, numbered
// row-major over the block grid, tiles row-major within each block.
func blockPartition(chip platform.Chip, gr, gc int) [][]int {
	h, w := chip.Rows/gr, chip.Cols/gc
	regions := make([][]int, gr*gc)
	for br := 0; br < gr; br++ {
		for bc := 0; bc < gc; bc++ {
			idx := br*gc + bc
			tiles := make([]int, 0, h*w)
			for r := br * h; r < (br+1)*h; r++ {
				for c := bc * w; c < (bc+1)*w; c++ {
					tiles = append(tiles, chip.ID(r, c))
				}
			}
			regions[idx] = tiles
		}
	}
	return regions
}

// snakePartition deals tiles in boustrophedon scan order into consecutive
// runs of the requested sizes, guaranteeing contiguous regions.
func snakePartition(chip platform.Chip, sizes []int) [][]int {
	order := make([]int, 0, chip.NumCores())
	for r := 0; r < chip.Rows; r++ {
		if r%2 == 0 {
			for c := 0; c < chip.Cols; c++ {
				order = append(order, chip.ID(r, c))
			}
		} else {
			for c := chip.Cols - 1; c >= 0; c-- {
				order = append(order, chip.ID(r, c))
			}
		}
	}
	regions := make([][]int, len(sizes))
	at := 0
	for j, s := range sizes {
		regions[j] = append([]int(nil), order[at:at+s]...)
		at += s
	}
	return regions
}

// RegionOf inverts a partition: out[tile] = index of the region holding it.
func RegionOf(n int, regions [][]int) []int {
	out := make([]int, n)
	for q, tiles := range regions {
		for _, id := range tiles {
			out[id] = q
		}
	}
	return out
}

// PartitionForAssign derives the region sizes from a core->island
// assignment (island j gets as many tiles as it has cores) and partitions
// the chip accordingly, so thread mapping can follow any clustering the
// design flow produces. Islands must be labeled 0..m-1 with every label
// present.
func PartitionForAssign(chip platform.Chip, assign []int) ([][]int, error) {
	if len(assign) != chip.NumCores() {
		return nil, fmt.Errorf("topo: %d assignments for %d tiles", len(assign), chip.NumCores())
	}
	m := 0
	for _, isl := range assign {
		if isl < 0 {
			return nil, fmt.Errorf("topo: negative island index %d", isl)
		}
		if isl+1 > m {
			m = isl + 1
		}
	}
	sizes := make([]int, m)
	for _, isl := range assign {
		sizes[isl]++
	}
	for j, s := range sizes {
		if s == 0 {
			return nil, fmt.Errorf("topo: island %d is empty", j)
		}
		_ = s
	}
	return Partition(chip, sizes)
}
