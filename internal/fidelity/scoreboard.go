package fidelity

import (
	"fmt"
	"math"
)

// Verdict classifies one scoreboard check.
type Verdict int

const (
	// Pass: the metric matches the paper (or invariant) within the tight
	// tolerance.
	Pass Verdict = iota
	// Warn: inside the documented reproduction-quality band but outside
	// the tight tolerance — expected for metrics EXPERIMENTS.md lists as
	// damped deviations. Warns never gate CI.
	Warn
	// Fail: outside every documented band, or the metric is missing — the
	// reproduction is broken. -check exits non-zero on any Fail.
	Fail
)

func (v Verdict) String() string {
	switch v {
	case Pass:
		return "pass"
	case Warn:
		return "warn"
	default:
		return "fail"
	}
}

// CheckKind selects how a check compares its metric.
type CheckKind int

const (
	// Near: |got - Want| <= PassTol passes, <= WarnTol warns, else fails.
	Near CheckKind = iota
	// AtMost: got <= Want (+ WarnTol for the warn band) — upper bounds
	// like "execution-time penalty at most the paper's 3.22%".
	AtMost
	// AtLeast: got >= Want (- WarnTol for the warn band).
	AtLeast
	// LessThanMetric: got < other metric — directional invariants like
	// "WiNoC EDP below mesh EDP". Its tolerances are relative to the
	// right-hand metric (unitless), unlike the absolute tolerances of the
	// scalar kinds, so one slack value works across benchmarks of very
	// different magnitudes.
	LessThanMetric
	// LabelIs: the row label equals WantLabel exactly — categorical facts
	// like "largest saving on kmeans" or Table 2 V/F multisets.
	LabelIs
)

// Check is one declarative target: a metric address, the paper's value (or
// a bound, or a second metric) and the documented tolerances. Tolerances
// are absolute, in the metric's own units.
type Check struct {
	ID     string // stable identifier, e.g. "headline.avg_edp_saving"
	Detail string // human description, citing the paper value

	Section, Row, Value string
	Kind                CheckKind
	Want                float64
	WantLabel           string
	// OtherSection/Row/Value name the right-hand metric of
	// LessThanMetric; empty components default to the left-hand ones.
	OtherSection, OtherRow, OtherValue string
	PassTol, WarnTol                   float64
}

// Result is one evaluated check.
type Result struct {
	Check
	Got      float64
	GotLabel string
	Other    float64 // right-hand side for LessThanMetric
	Verdict  Verdict
	Note     string // one-line explanation of the verdict
}

// Addr returns the canonical address of the checked metric.
func (r Result) Addr() string { return Address(r.Section, r.Row, r.Value) }

// Evaluate runs every check against the snapshot, in order. A missing
// metric is always a Fail — silently skipping a target would let coverage
// rot invisibly.
func Evaluate(s *Snapshot, checks []Check) []Result {
	results := make([]Result, 0, len(checks))
	for _, c := range checks {
		results = append(results, evaluate(s, c))
	}
	return results
}

func evaluate(s *Snapshot, c Check) Result {
	res := Result{Check: c}
	if c.Kind == LabelIs {
		got, ok := s.Label(c.Section, c.Row, c.Value)
		if !ok {
			res.Verdict = Fail
			res.Note = fmt.Sprintf("label %s missing from snapshot", res.Addr())
			return res
		}
		res.GotLabel = got
		if got == c.WantLabel {
			res.Verdict = Pass
			res.Note = fmt.Sprintf("%q as expected", got)
		} else {
			res.Verdict = Fail
			res.Note = fmt.Sprintf("got %q, want %q", got, c.WantLabel)
		}
		return res
	}

	got, ok := s.Metric(c.Section, c.Row, c.Value)
	if !ok {
		res.Verdict = Fail
		res.Note = fmt.Sprintf("metric %s missing from snapshot", res.Addr())
		return res
	}
	res.Got = got

	// delta > 0 means "worse than the target" in every kind below; the
	// verdict bands then read identically for all of them.
	var delta float64
	switch c.Kind {
	case Near:
		delta = got - c.Want
		if delta < 0 {
			delta = -delta
		}
		res.Note = fmt.Sprintf("got %.4g, target %.4g (±%.3g pass, ±%.3g warn)", got, c.Want, c.PassTol, c.WarnTol)
	case AtMost:
		delta = got - c.Want
		res.Note = fmt.Sprintf("got %.4g, bound <= %.4g (+%.3g warn)", got, c.Want, c.WarnTol)
	case AtLeast:
		delta = c.Want - got
		res.Note = fmt.Sprintf("got %.4g, bound >= %.4g (-%.3g warn)", got, c.Want, c.WarnTol)
	case LessThanMetric:
		osec, orow, oval := c.OtherSection, c.OtherRow, c.OtherValue
		if osec == "" {
			osec = c.Section
		}
		if orow == "" {
			orow = c.Row
		}
		if oval == "" {
			oval = c.Value
		}
		other, ok := s.Metric(osec, orow, oval)
		if !ok {
			res.Verdict = Fail
			res.Note = fmt.Sprintf("metric %s missing from snapshot", Address(osec, orow, oval))
			return res
		}
		res.Other = other
		delta = got - other
		if other != 0 {
			delta /= math.Abs(other) // relative slack, comparable across benchmarks
		}
		res.Note = fmt.Sprintf("got %.4g vs %.4g (%s)", got, other, Address(osec, orow, oval))
	default:
		res.Verdict = Fail
		res.Note = fmt.Sprintf("unknown check kind %d", c.Kind)
		return res
	}

	switch {
	case delta <= c.PassTol:
		res.Verdict = Pass
	case delta <= c.WarnTol:
		res.Verdict = Warn
	default:
		res.Verdict = Fail
	}
	return res
}

// Tally counts verdicts.
type Tally struct {
	Pass, Warn, Fail int
}

// Count tallies a result list.
func Count(results []Result) Tally {
	var t Tally
	for _, r := range results {
		switch r.Verdict {
		case Pass:
			t.Pass++
		case Warn:
			t.Warn++
		default:
			t.Fail++
		}
	}
	return t
}

// Failures returns only the failing results, for -check error output.
func Failures(results []Result) []Result {
	var out []Result
	for _, r := range results {
		if r.Verdict == Fail {
			out = append(out, r)
		}
	}
	return out
}
