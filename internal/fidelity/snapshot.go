// Package fidelity is the results-observability layer of the harness: it
// turns the regenerated figures and tables into a schema-versioned metrics
// snapshot, evaluates declarative paper targets into a pass/warn/fail
// scoreboard, diffs snapshots against a committed golden baseline with
// per-metric tolerances, and renders everything (plus the run manifest)
// into a self-contained HTML or markdown run report.
//
// The package deliberately knows nothing about the simulator: producers
// (internal/expt) convert their typed figure rows into Sections of generic
// Rows, and every consumer — scoreboard, diff, report, CI gate — works on
// that one document. Like the rest of the telemetry stack, nothing here
// ever writes to stdout, so the byte-identical-output guarantee of the
// harness is preserved with fidelity tracking on or off.
package fidelity

import (
	"encoding/json"
	"fmt"
	"os"
)

// SchemaVersion is stamped into every snapshot; bump it when the meaning
// of the document changes (sections, row keys, value semantics). Loading a
// snapshot with a different schema is an error, never a silent mis-diff.
const SchemaVersion = 1

// Snapshot is one run's complete structured results: every row of every
// reproduced figure and table, keyed by the experiment configuration hash
// so before/after comparisons can prove they measured the same setup.
type Snapshot struct {
	Schema     int       `json:"schema"`
	Tool       string    `json:"tool"`
	ConfigHash string    `json:"config_hash"`
	Sections   []Section `json:"sections"`
}

// Section is one figure, table or study: an ordered list of rows.
type Section struct {
	ID    string `json:"id"`    // stable machine key, e.g. "fig8"
	Title string `json:"title"` // human heading, e.g. "Fig. 8. Full-system EDP"
	Rows  []Row  `json:"rows"`
}

// Row is one line of a figure or table. Key identifies the row within its
// section (usually the benchmark name); Values holds the scalar metrics,
// Labels the categorical ones (placement strategy, V/F multisets), and
// Series an optional ordered curve (e.g. the 64 sorted core utilizations
// behind a Fig. 2 panel) for element-wise diffing and sparklines.
type Row struct {
	Key    string             `json:"key"`
	Values map[string]float64 `json:"values,omitempty"`
	Labels map[string]string  `json:"labels,omitempty"`
	Series []float64          `json:"series,omitempty"`
}

// Section returns the section with the given id, or nil.
func (s *Snapshot) Section(id string) *Section {
	for i := range s.Sections {
		if s.Sections[i].ID == id {
			return &s.Sections[i]
		}
	}
	return nil
}

// Row returns the row with the given key, or nil.
func (sec *Section) Row(key string) *Row {
	if sec == nil {
		return nil
	}
	for i := range sec.Rows {
		if sec.Rows[i].Key == key {
			return &sec.Rows[i]
		}
	}
	return nil
}

// Metric resolves one scalar by (section, row, value name).
func (s *Snapshot) Metric(section, row, value string) (float64, bool) {
	r := s.Section(section).Row(row)
	if r == nil {
		return 0, false
	}
	v, ok := r.Values[value]
	return v, ok
}

// Label resolves one categorical value by (section, row, label name).
func (s *Snapshot) Label(section, row, label string) (string, bool) {
	r := s.Section(section).Row(row)
	if r == nil {
		return "", false
	}
	v, ok := r.Labels[label]
	return v, ok
}

// Address renders the canonical name of one metric, the form every
// diff finding and scoreboard line uses: section[row].value.
func Address(section, row, value string) string {
	return fmt.Sprintf("%s[%s].%s", section, row, value)
}

// Marshal renders the snapshot as stable, indented JSON (map keys sort,
// sections and rows keep their insertion order) terminated by a newline.
func (s *Snapshot) Marshal() ([]byte, error) {
	blob, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

// WriteFile writes the snapshot to path.
func WriteFile(path string, s *Snapshot) error {
	blob, err := s.Marshal()
	if err != nil {
		return fmt.Errorf("fidelity: marshaling snapshot: %w", err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return fmt.Errorf("fidelity: writing snapshot: %w", err)
	}
	return nil
}

// LoadFile reads and validates a snapshot. A schema mismatch is an error:
// diffing across schema versions would silently compare unlike metrics.
func LoadFile(path string) (*Snapshot, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fidelity: reading snapshot: %w", err)
	}
	var s Snapshot
	if err := json.Unmarshal(blob, &s); err != nil {
		return nil, fmt.Errorf("fidelity: parsing snapshot %s: %w", path, err)
	}
	if s.Schema != SchemaVersion {
		return nil, fmt.Errorf("fidelity: snapshot %s has schema %d, this build reads %d (regenerate it)",
			path, s.Schema, SchemaVersion)
	}
	return &s, nil
}
