package fidelity

import (
	"fmt"
	"html/template"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"wivfi/internal/obs"
	"wivfi/internal/timeline"
)

// ReportData bundles everything one run report renders: the snapshot, the
// evaluated scoreboard, the optional baseline diff, the optional run
// manifest (stage timings, counters, cache outcomes) and the optional
// time-resolved timeline set (phase strips, link heatmap, latency
// histogram).
type ReportData struct {
	Title        string
	Snapshot     *Snapshot
	Results      []Result
	Diff         *DiffReport
	BaselinePath string
	Manifest     *obs.Manifest
	Timelines    *timeline.Set
}

// WriteReport renders the run report to path; the extension picks the
// format (.md / .markdown renders markdown, anything else the
// self-contained HTML page).
func WriteReport(path string, d ReportData) error {
	var blob []byte
	switch strings.ToLower(filepath.Ext(path)) {
	case ".md", ".markdown":
		blob = []byte(renderMarkdown(d))
	default:
		html, err := renderHTML(d)
		if err != nil {
			return fmt.Errorf("fidelity: rendering report: %w", err)
		}
		blob = html
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return fmt.Errorf("fidelity: writing report: %w", err)
	}
	return nil
}

// ---- Markdown -------------------------------------------------------------

// sparkGlyphs renders a series as a unicode sparkline, scaled to its own
// min/max.
func sparkGlyphs(series []float64) string {
	if len(series) == 0 {
		return ""
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	lo, hi := series[0], series[0]
	for _, v := range series {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range series {
		i := 0
		if hi > lo {
			i = int((v - lo) / (hi - lo) * float64(len(glyphs)-1))
		}
		b.WriteRune(glyphs[i])
	}
	return b.String()
}

func renderMarkdown(d ReportData) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n\n", d.Title)
	if d.Snapshot != nil {
		fmt.Fprintf(&b, "Config `%s`, snapshot schema %d.\n\n", d.Snapshot.ConfigHash, d.Snapshot.Schema)
	}

	if len(d.Results) > 0 {
		t := Count(d.Results)
		fmt.Fprintf(&b, "## Paper-fidelity scoreboard — %d pass / %d warn / %d fail\n\n", t.Pass, t.Warn, t.Fail)
		b.WriteString("| verdict | check | metric | result |\n|---|---|---|---|\n")
		for _, r := range d.Results {
			fmt.Fprintf(&b, "| %s | %s | `%s` | %s |\n", verdictBadge(r.Verdict), r.Detail, r.Addr(), r.Note)
		}
		b.WriteString("\n")
	}

	if d.Diff != nil {
		fmt.Fprintf(&b, "## Baseline diff — %s\n\n", diffHeadline(d.Diff))
		if d.BaselinePath != "" {
			fmt.Fprintf(&b, "Baseline: `%s` (config `%s`).\n\n", d.BaselinePath, d.Diff.BaselineConfigHash)
		}
		if len(d.Diff.Findings) > 0 {
			b.WriteString("| kind | metric | change |\n|---|---|---|\n")
			for _, f := range d.Diff.Findings {
				fmt.Fprintf(&b, "| %s | `%s` | %s |\n", f.Kind, f.Address, diffChange(f))
			}
			b.WriteString("\n")
		}
	}

	if d.Snapshot != nil {
		b.WriteString("## Sections\n\n")
		for _, sec := range d.Snapshot.Sections {
			fmt.Fprintf(&b, "### %s\n\n", sec.Title)
			cols := sectionColumns(sec)
			hasSeries := sectionHasSeries(sec)
			b.WriteString("| row |")
			for _, c := range cols {
				b.WriteString(" " + c + " |")
			}
			if hasSeries {
				b.WriteString(" series |")
			}
			b.WriteString("\n|---|")
			b.WriteString(strings.Repeat("---|", len(cols)))
			if hasSeries {
				b.WriteString("---|")
			}
			b.WriteString("\n")
			for _, row := range sec.Rows {
				fmt.Fprintf(&b, "| %s |", rowLabel(row))
				for _, c := range cols {
					if v, ok := row.Values[c]; ok {
						fmt.Fprintf(&b, " %.4g |", v)
					} else {
						b.WriteString(" — |")
					}
				}
				if hasSeries {
					fmt.Fprintf(&b, " %s |", sparkGlyphs(row.Series))
				}
				b.WriteString("\n")
			}
			b.WriteString("\n")
		}
	}

	if d.Timelines != nil {
		b.WriteString(timelineMarkdown(d.Timelines))
	}

	if d.Manifest != nil {
		b.WriteString(manifestMarkdown(d.Manifest))
	}
	return b.String()
}

func verdictBadge(v Verdict) string {
	switch v {
	case Pass:
		return "✅ pass"
	case Warn:
		return "⚠️ warn"
	default:
		return "❌ fail"
	}
}

func diffHeadline(d *DiffReport) string {
	if d.Clean() {
		return fmt.Sprintf("clean (%d metrics compared)", d.Compared)
	}
	n := len(d.Regressions())
	s := fmt.Sprintf("%d regression(s) over %d metrics", n, d.Compared)
	if d.ConfigMismatch {
		s += fmt.Sprintf("; CONFIG MISMATCH %s vs %s", d.CurrentConfigHash, d.BaselineConfigHash)
	}
	return s
}

func diffChange(f Finding) string {
	switch f.Kind {
	case Changed:
		return fmt.Sprintf("%.6g → %.6g (%+.3g%%)", f.Old, f.New, 100*f.RelDelta)
	case LabelChanged:
		return fmt.Sprintf("%q → %q", f.OldLabel, f.NewLabel)
	default:
		return f.Note
	}
}

// rowLabel renders a row's key plus any labels.
func rowLabel(r Row) string {
	s := r.Key
	for _, k := range sortedKeys(r.Labels) {
		s += fmt.Sprintf(" %s=%s", k, r.Labels[k])
	}
	return s
}

// sectionColumns returns the union of value names in a section, sorted.
func sectionColumns(sec Section) []string {
	set := map[string]bool{}
	for _, r := range sec.Rows {
		for k := range r.Values {
			set[k] = true
		}
	}
	cols := make([]string, 0, len(set))
	for k := range set {
		cols = append(cols, k)
	}
	sort.Strings(cols)
	return cols
}

func sectionHasSeries(sec Section) bool {
	for _, r := range sec.Rows {
		if len(r.Series) > 0 {
			return true
		}
	}
	return false
}

func manifestMarkdown(m *obs.Manifest) string {
	var b strings.Builder
	b.WriteString("## Run manifest\n\n")
	fmt.Fprintf(&b, "`%s` with %d job(s), wall %.0f ms", m.Command, m.Jobs, m.WallMS)
	if m.Cache != nil {
		fmt.Fprintf(&b, "; design cache %d hit(s) / %d miss(es) / %d corrupt evicted",
			m.Cache.Hits, m.Cache.Misses, m.Cache.CorruptEvicted)
	}
	b.WriteString(".\n\n")
	if len(m.Stages) > 0 {
		b.WriteString("| stage | count | total ms | min ms | max ms |\n|---|---|---|---|---|\n")
		for _, s := range m.Stages {
			fmt.Fprintf(&b, "| %s | %d | %.1f | %.2f | %.2f |\n", s.Name, s.Count, s.TotalMS, s.MinMS, s.MaxMS)
		}
		b.WriteString("\n")
	}
	if len(m.Counters) > 0 {
		b.WriteString("| counter | total |\n|---|---|\n")
		for _, k := range sortedKeys(m.Counters) {
			fmt.Fprintf(&b, "| %s | %d |\n", k, m.Counters[k])
		}
		b.WriteString("\n")
	}
	if len(m.Histograms) > 0 {
		b.WriteString("| histogram | count | min | p50 | p95 | p99 | max |\n|---|---|---|---|---|---|---|\n")
		for _, h := range m.Histograms {
			fmt.Fprintf(&b, "| %s | %d | %d | %d | %d | %d | %d |\n", h.Name, h.Count, h.Min, h.P50, h.P95, h.P99, h.Max)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ---- HTML -----------------------------------------------------------------

// sparkSVG renders a series as a small inline SVG polyline.
func sparkSVG(series []float64) template.HTML {
	if len(series) == 0 {
		return ""
	}
	const w, h = 128.0, 24.0
	lo, hi := series[0], series[0]
	for _, v := range series {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	var pts strings.Builder
	for i, v := range series {
		x := w * float64(i) / float64(max(len(series)-1, 1))
		y := h - 2
		if hi > lo {
			y = (h - 4) * (1 - (v-lo)/(hi-lo)) * 1.0
			y += 2
		}
		fmt.Fprintf(&pts, "%.1f,%.1f ", x, y)
	}
	svg := fmt.Sprintf(
		`<svg class="spark" width="%d" height="%d" viewBox="0 0 %d %d"><polyline points="%s" fill="none" stroke="#4063d8" stroke-width="1.5"/></svg>`,
		int(w), int(h), int(w), int(h), strings.TrimSpace(pts.String()))
	return template.HTML(svg)
}

// bar renders a value as a horizontal mini-bar scaled to the column max.
func bar(v, colMax float64) template.HTML {
	if colMax <= 0 || v < 0 {
		return ""
	}
	pct := 100 * v / colMax
	return template.HTML(fmt.Sprintf(`<span class="bar" style="width:%.0f%%"></span>`, math.Min(pct, 100)))
}

var htmlTmpl = template.Must(template.New("report").Funcs(template.FuncMap{
	"spark":   sparkSVG,
	"badge":   verdictBadge,
	"change":  diffChange,
	"rowname": rowLabel,
	"num":     func(v float64) string { return fmt.Sprintf("%.4g", v) },
}).Parse(`<!doctype html>
<html lang="en"><head><meta charset="utf-8">
<title>{{.Title}}</title>
<style>
  body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 72rem; padding: 0 1rem; color: #1a1a1a; }
  h1 { font-size: 1.5rem; } h2 { font-size: 1.2rem; margin-top: 2rem; } h3 { font-size: 1rem; margin-top: 1.4rem; }
  table { border-collapse: collapse; width: 100%; margin: .6rem 0; }
  th, td { text-align: left; padding: .25rem .6rem; border-bottom: 1px solid #e4e4e4; vertical-align: top; }
  th { background: #f6f6f6; font-weight: 600; }
  td.n { text-align: right; font-variant-numeric: tabular-nums; white-space: nowrap; }
  code { background: #f2f2f2; padding: 0 .25rem; border-radius: 3px; font-size: .92em; }
  .pass { color: #1a7f37; } .warn { color: #9a6700; } .fail { color: #cf222e; font-weight: 600; }
  .summary { display: flex; gap: 1.2rem; margin: .8rem 0; }
  .tile { border: 1px solid #e4e4e4; border-radius: 6px; padding: .6rem 1rem; }
  .tile b { display: block; font-size: 1.4rem; }
  .bar { display: inline-block; height: .55em; background: #aec3f2; margin-right: .3em; border-radius: 2px; }
  .cell { display: flex; align-items: center; justify-content: flex-end; gap: .3em; }
  .cell .bar { margin: 0; }
  svg.spark { vertical-align: middle; }
  .muted { color: #6e6e6e; }
  .key { display: inline-block; width: .8em; height: .8em; border-radius: 2px; vertical-align: -.1em; margin-left: .6em; }
</style></head><body>
<h1>{{.Title}}</h1>
{{if .Snapshot}}<p class="muted">Config <code>{{.Snapshot.ConfigHash}}</code> · snapshot schema {{.Snapshot.Schema}}</p>{{end}}

{{if .Results}}
<h2>Paper-fidelity scoreboard</h2>
<div class="summary">
  <div class="tile"><b class="pass">{{.Tally.Pass}}</b>pass</div>
  <div class="tile"><b class="warn">{{.Tally.Warn}}</b>warn</div>
  <div class="tile"><b class="fail">{{.Tally.Fail}}</b>fail</div>
</div>
<table><tr><th>verdict</th><th>check</th><th>metric</th><th>result</th></tr>
{{range .Results}}<tr><td class="{{.Verdict}}">{{badge .Verdict}}</td><td>{{.Detail}}</td><td><code>{{.Addr}}</code></td><td>{{.Note}}</td></tr>
{{end}}</table>
{{end}}

{{if .Diff}}
<h2>Baseline diff</h2>
<p>{{.DiffHeadline}}{{if .BaselinePath}} — baseline <code>{{.BaselinePath}}</code>{{end}}</p>
{{if .Diff.Findings}}
<table><tr><th>kind</th><th>metric</th><th>change</th></tr>
{{range .Diff.Findings}}<tr><td>{{.Kind}}</td><td><code>{{.Address}}</code></td><td>{{change .}}</td></tr>
{{end}}</table>
{{end}}
{{end}}

{{if .Snapshot}}
<h2>Figures and tables</h2>
{{range .SectionViews}}
<h3>{{.Title}}</h3>
<table><tr><th>row</th>{{range .Cols}}<th>{{.}}</th>{{end}}{{if .HasSeries}}<th>curve</th>{{end}}</tr>
{{range .Rows}}<tr><td>{{rowname .Row}}</td>{{range .Cells}}<td class="n">{{if .Present}}<span class="cell">{{.Bar}}<span>{{num .Value}}</span></span>{{else}}—{{end}}</td>{{end}}{{if .HasSeries}}<td>{{spark .Row.Series}}</td>{{end}}</tr>
{{end}}</table>
{{end}}
{{end}}

{{if .TimelineViews}}
<h2>Timelines</h2>
{{range .TimelineViews}}
<h3>{{.App}}</h3>
{{if .Strips}}
<p class="muted">Worker phase strips — {{.StripNote}}.
{{range .Legend}}<span class="key" style="background:{{.Color}}"></span> {{.State}} {{end}}</p>
{{.Strips}}
{{end}}
{{if .Heatmap}}
<p class="muted">Link heatmap — {{.HeatmapNote}}.</p>
{{.Heatmap}}
{{end}}
{{if .Histogram}}
<p class="muted">Packet latency — {{.HistNote}}.</p>
{{.Histogram}}
{{end}}
{{if .Sparks}}
<table><tr><th>series</th><th>unit</th><th>curve</th></tr>
{{range .Sparks}}<tr><td><code>{{.Name}}</code></td><td>{{.Unit}}</td><td>{{.Spark}}</td></tr>
{{end}}</table>
{{end}}
{{end}}
{{end}}

{{if .Manifest}}
<h2>Run manifest</h2>
<p><code>{{.Manifest.Command}}</code> · {{.Manifest.Jobs}} job(s) · wall {{printf "%.0f" .Manifest.WallMS}} ms{{if .Manifest.Cache}} · design cache {{.Manifest.Cache.Hits}} hit(s) / {{.Manifest.Cache.Misses}} miss(es) / {{.Manifest.Cache.CorruptEvicted}} corrupt evicted{{end}}</p>
{{if .Manifest.Stages}}
<table><tr><th>stage</th><th>count</th><th>total ms</th><th>min ms</th><th>max ms</th></tr>
{{range .Manifest.Stages}}<tr><td>{{.Name}}</td><td class="n">{{.Count}}</td><td class="n">{{printf "%.1f" .TotalMS}}</td><td class="n">{{printf "%.2f" .MinMS}}</td><td class="n">{{printf "%.2f" .MaxMS}}</td></tr>
{{end}}</table>
{{end}}
{{if .CounterRows}}
<table><tr><th>counter</th><th>total</th></tr>
{{range .CounterRows}}<tr><td>{{.Name}}</td><td class="n">{{.Value}}</td></tr>
{{end}}</table>
{{end}}
{{if .Manifest.Histograms}}
<table><tr><th>histogram</th><th>count</th><th>min</th><th>p50</th><th>p95</th><th>p99</th><th>max</th></tr>
{{range .Manifest.Histograms}}<tr><td>{{.Name}}</td><td class="n">{{.Count}}</td><td class="n">{{.Min}}</td><td class="n">{{.P50}}</td><td class="n">{{.P95}}</td><td class="n">{{.P99}}</td><td class="n">{{.Max}}</td></tr>
{{end}}</table>
{{end}}
{{end}}
</body></html>
`))

// cellView is one rendered numeric cell.
type cellView struct {
	Present bool
	Value   float64
	Bar     template.HTML
}

type rowView struct {
	Row       Row
	Cells     []cellView
	HasSeries bool
}

type sectionView struct {
	Title     string
	Cols      []string
	HasSeries bool
	Rows      []rowView
}

type counterRow struct {
	Name  string
	Value int64
}

type htmlData struct {
	ReportData
	Tally         Tally
	DiffHeadline  string
	SectionViews  []sectionView
	CounterRows   []counterRow
	TimelineViews []timelineView
}

func renderHTML(d ReportData) ([]byte, error) {
	hd := htmlData{ReportData: d, Tally: Count(d.Results)}
	if d.Diff != nil {
		hd.DiffHeadline = diffHeadline(d.Diff)
	}
	if d.Snapshot != nil {
		for _, sec := range d.Snapshot.Sections {
			cols := sectionColumns(sec)
			sv := sectionView{Title: sec.Title, Cols: cols, HasSeries: sectionHasSeries(sec)}
			// column maxima scale the mini-bars
			colMax := map[string]float64{}
			for _, r := range sec.Rows {
				//lint:ordered math.Max is commutative and exact — no rounding drift from iteration order
				for k, v := range r.Values {
					colMax[k] = math.Max(colMax[k], v)
				}
			}
			for _, r := range sec.Rows {
				rv := rowView{Row: r, HasSeries: sv.HasSeries}
				for _, c := range cols {
					v, ok := r.Values[c]
					cell := cellView{Present: ok, Value: v}
					if ok {
						cell.Bar = bar(v, colMax[c])
					}
					rv.Cells = append(rv.Cells, cell)
				}
				sv.Rows = append(sv.Rows, rv)
			}
			hd.SectionViews = append(hd.SectionViews, sv)
		}
	}
	if d.Manifest != nil {
		for _, k := range sortedKeys(d.Manifest.Counters) {
			hd.CounterRows = append(hd.CounterRows, counterRow{Name: k, Value: d.Manifest.Counters[k]})
		}
	}
	hd.TimelineViews = timelineViews(d.Timelines)
	var b strings.Builder
	if err := htmlTmpl.Execute(&b, hd); err != nil {
		return nil, err
	}
	return []byte(b.String()), nil
}
