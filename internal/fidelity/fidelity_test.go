package fidelity

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sample builds a small two-section snapshot for the unit tests.
func sample() *Snapshot {
	return &Snapshot{
		Schema:     SchemaVersion,
		Tool:       "test",
		ConfigHash: "cafe",
		Sections: []Section{
			{ID: "fig8", Title: "Fig. 8", Rows: []Row{
				{Key: "wc", Values: map[string]float64{"edp_mesh": 0.851, "edp_winoc": 0.793}, Labels: map[string]string{"strategy": "max-wireless"}},
				{Key: "kmeans", Values: map[string]float64{"edp_mesh": 0.557, "edp_winoc": 0.493}},
			}},
			{ID: "fig2", Title: "Fig. 2", Rows: []Row{
				{Key: "pca", Values: map[string]float64{"avg": 0.496}, Series: []float64{0.75, 0.52, 0.5, 0.45}},
			}},
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := sample()
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ConfigHash != "cafe" || len(got.Sections) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if v, ok := got.Metric("fig8", "wc", "edp_winoc"); !ok || v != 0.793 {
		t.Fatalf("Metric lookup = %v, %v", v, ok)
	}
	if l, ok := got.Label("fig8", "wc", "strategy"); !ok || l != "max-wireless" {
		t.Fatalf("Label lookup = %q, %v", l, ok)
	}
	if _, ok := got.Metric("fig8", "nosuch", "edp_winoc"); ok {
		t.Fatal("lookup of missing row succeeded")
	}
	if _, ok := got.Metric("nosuch", "wc", "edp_winoc"); ok {
		t.Fatal("lookup of missing section succeeded")
	}
}

func TestLoadRejectsSchemaMismatch(t *testing.T) {
	s := sample()
	s.Schema = SchemaVersion + 1
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("schema mismatch not rejected: %v", err)
	}
}

func TestMarshalDeterministic(t *testing.T) {
	a, err := sample().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sample().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("snapshot marshaling is not deterministic")
	}
	if !json.Valid(a) {
		t.Error("snapshot is not valid JSON")
	}
}

func TestAddress(t *testing.T) {
	if got := Address("fig8", "wc", "edp_winoc"); got != "fig8[wc].edp_winoc" {
		t.Errorf("Address = %q", got)
	}
}

func TestEvaluateVerdicts(t *testing.T) {
	s := sample()
	checks := []Check{
		{ID: "near-pass", Section: "fig8", Row: "wc", Value: "edp_mesh", Kind: Near, Want: 0.85, PassTol: 0.01, WarnTol: 0.05},
		{ID: "near-warn", Section: "fig8", Row: "wc", Value: "edp_mesh", Kind: Near, Want: 0.88, PassTol: 0.01, WarnTol: 0.05},
		{ID: "near-fail", Section: "fig8", Row: "wc", Value: "edp_mesh", Kind: Near, Want: 0.5, PassTol: 0.01, WarnTol: 0.05},
		{ID: "atmost-pass", Section: "fig8", Row: "wc", Value: "edp_mesh", Kind: AtMost, Want: 1.0},
		{ID: "atmost-fail", Section: "fig8", Row: "wc", Value: "edp_mesh", Kind: AtMost, Want: 0.5},
		{ID: "atleast-pass", Section: "fig8", Row: "wc", Value: "edp_mesh", Kind: AtLeast, Want: 0.5},
		{ID: "less-pass", Section: "fig8", Row: "wc", Value: "edp_winoc", Kind: LessThanMetric, OtherValue: "edp_mesh"},
		{ID: "less-fail", Section: "fig8", Row: "wc", Value: "edp_mesh", Kind: LessThanMetric, OtherValue: "edp_winoc"},
		{ID: "less-cross-row", Section: "fig8", Row: "kmeans", Value: "edp_winoc", Kind: LessThanMetric, OtherRow: "wc", OtherValue: "edp_mesh"},
		{ID: "label-pass", Section: "fig8", Row: "wc", Value: "strategy", Kind: LabelIs, WantLabel: "max-wireless"},
		{ID: "label-fail", Section: "fig8", Row: "wc", Value: "strategy", Kind: LabelIs, WantLabel: "min-hop"},
		{ID: "missing", Section: "fig8", Row: "wc", Value: "nosuch", Kind: Near, Want: 1},
		{ID: "missing-row", Section: "fig8", Row: "nosuch", Value: "edp_mesh", Kind: Near, Want: 1},
	}
	want := map[string]Verdict{
		"near-pass": Pass, "near-warn": Warn, "near-fail": Fail,
		"atmost-pass": Pass, "atmost-fail": Fail, "atleast-pass": Pass,
		"less-pass": Pass, "less-fail": Fail, "less-cross-row": Pass,
		"label-pass": Pass, "label-fail": Fail,
		"missing": Fail, "missing-row": Fail,
	}
	results := Evaluate(s, checks)
	if len(results) != len(checks) {
		t.Fatalf("%d results for %d checks", len(results), len(checks))
	}
	for _, r := range results {
		if r.Verdict != want[r.ID] {
			t.Errorf("%s: verdict %v, want %v (%s)", r.ID, r.Verdict, want[r.ID], r.Note)
		}
		if r.Note == "" {
			t.Errorf("%s: empty note", r.ID)
		}
	}
	tally := Count(results)
	if tally.Pass != 6 || tally.Warn != 1 || tally.Fail != 6 {
		t.Errorf("tally = %+v", tally)
	}
	if got := len(Failures(results)); got != 6 {
		t.Errorf("%d failures", got)
	}
}

func TestDiffCleanOnIdentical(t *testing.T) {
	d := Diff(sample(), sample(), DiffOptions{})
	if !d.Clean() {
		t.Fatalf("identical snapshots not clean: %+v", d.Findings)
	}
	// 5 scalars + 4 series points
	if d.Compared != 9 {
		t.Errorf("compared %d metrics, want 9", d.Compared)
	}
}

func TestDiffWithinToleranceIsClean(t *testing.T) {
	cur := sample()
	cur.Sections[0].Rows[0].Values["edp_mesh"] *= 1 + 1e-9 // far inside 1e-6 rel tol
	if d := Diff(cur, sample(), DiffOptions{}); !d.Clean() {
		t.Errorf("sub-tolerance drift flagged: %+v", d.Findings)
	}
}

func TestDiffNamesTamperedMetric(t *testing.T) {
	cur := sample()
	cur.Sections[0].Rows[1].Values["edp_winoc"] = 0.6 // kmeans regression
	d := Diff(cur, sample(), DiffOptions{})
	if d.Clean() {
		t.Fatal("tampered snapshot diffed clean")
	}
	regs := d.Regressions()
	if len(regs) != 1 {
		t.Fatalf("findings = %+v", regs)
	}
	if regs[0].Address != "fig8[kmeans].edp_winoc" || regs[0].Kind != Changed {
		t.Errorf("finding does not name the offending metric: %+v", regs[0])
	}
	if !strings.Contains(regs[0].String(), "fig8[kmeans].edp_winoc") {
		t.Errorf("finding string %q does not name the metric", regs[0].String())
	}
}

func TestDiffPerMetricTolerance(t *testing.T) {
	cur := sample()
	cur.Sections[0].Rows[0].Values["edp_mesh"] *= 1.04
	addr := "fig8[wc].edp_mesh"
	if d := Diff(cur, sample(), DiffOptions{PerMetric: map[string]float64{addr: 0.05}}); !d.Clean() {
		t.Errorf("override tolerance ignored: %+v", d.Findings)
	}
	if d := Diff(cur, sample(), DiffOptions{}); d.Clean() {
		t.Error("4% drift passed default tolerance")
	}
}

func TestDiffStructuralChanges(t *testing.T) {
	cur := sample()
	// remove a row, a label, and change a series point; add a new metric
	cur.Sections[0].Rows = cur.Sections[0].Rows[:1]
	delete(cur.Sections[0].Rows[0].Labels, "strategy")
	cur.Sections[1].Rows[0].Series[2] = 0.9
	cur.Sections[1].Rows[0].Values["extra"] = 1
	d := Diff(cur, sample(), DiffOptions{})
	kinds := map[FindingKind]int{}
	byAddr := map[string]Finding{}
	for _, f := range d.Findings {
		kinds[f.Kind]++
		byAddr[f.Address] = f
	}
	if kinds[Removed] != 2 { // kmeans row + strategy label
		t.Errorf("removed findings: %+v", d.Findings)
	}
	if kinds[Added] != 1 {
		t.Errorf("added findings: %+v", d.Findings)
	}
	if f, ok := byAddr["fig2[pca].series[2]"]; !ok || f.Kind != Changed {
		t.Errorf("series change not localized: %+v", d.Findings)
	}
	if d.Clean() {
		t.Error("structural regressions diffed clean")
	}
}

func TestDiffConfigMismatch(t *testing.T) {
	cur := sample()
	cur.ConfigHash = "beef"
	d := Diff(cur, sample(), DiffOptions{})
	if !d.ConfigMismatch || d.Clean() {
		t.Errorf("config mismatch not flagged: %+v", d)
	}
}

func TestWriteReportHTMLAndMarkdown(t *testing.T) {
	s := sample()
	results := Evaluate(s, []Check{
		{ID: "ok", Detail: "WiNoC beats mesh on WC", Section: "fig8", Row: "wc", Value: "edp_winoc", Kind: LessThanMetric, OtherValue: "edp_mesh"},
		{ID: "bad", Detail: "impossible target", Section: "fig8", Row: "wc", Value: "edp_mesh", Kind: AtMost, Want: 0.1},
	})
	cur := sample()
	cur.Sections[0].Rows[0].Values["edp_mesh"] = 0.99
	diff := Diff(cur, s, DiffOptions{})
	dir := t.TempDir()

	htmlPath := filepath.Join(dir, "report.html")
	if err := WriteReport(htmlPath, ReportData{
		Title: "test report", Snapshot: cur, Results: results, Diff: diff, BaselinePath: "base.json",
	}); err != nil {
		t.Fatal(err)
	}
	html, err := os.ReadFile(htmlPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<!doctype html>", "Paper-fidelity scoreboard", "fig8[wc].edp_mesh",
		"WiNoC beats mesh on WC", "Baseline diff", "svg", "polyline",
	} {
		if !strings.Contains(string(html), want) {
			t.Errorf("HTML report missing %q", want)
		}
	}

	mdPath := filepath.Join(dir, "report.md")
	if err := WriteReport(mdPath, ReportData{Title: "test report", Snapshot: cur, Results: results}); err != nil {
		t.Fatal(err)
	}
	md, err := os.ReadFile(mdPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# test report", "| verdict |", "❌ fail", "### Fig. 2"} {
		if !strings.Contains(string(md), want) {
			t.Errorf("markdown report missing %q", want)
		}
	}
	if !strings.ContainsAny(string(md), "▁▂▃▄▅▆▇█") {
		t.Error("markdown report has no sparkline")
	}
}

func TestSparkGlyphs(t *testing.T) {
	if got := sparkGlyphs([]float64{0, 1}); got != "▁█" {
		t.Errorf("sparkGlyphs = %q", got)
	}
	if got := sparkGlyphs([]float64{1, 1, 1}); got != "▁▁▁" {
		t.Errorf("flat series = %q", got)
	}
	if sparkGlyphs(nil) != "" {
		t.Error("nil series should render empty")
	}
}
