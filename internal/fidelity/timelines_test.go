package fidelity

import (
	"strings"
	"testing"

	"wivfi/internal/obs"
	"wivfi/internal/timeline"
)

// sampleTimelines builds a small set with every series kind the report
// renders: worker phase tracks, link samplers, a latency histogram and a
// windowed energy sampler.
func sampleTimelines() *timeline.Set {
	col := timeline.NewCollector()
	for w := 0; w < 2; w++ {
		tr := timeline.NewTrack(timeline.Meta{Name: "expt/wc/worker/0" + string(rune('0'+w)) + "/phase", IndexUnit: "vns"})
		tr.Set(0, "libinit")
		tr.Set(100, "map")
		tr.Set(700, "reduce")
		tr.Set(900, "merge")
		tr.Set(1000, "done")
		col.AddSeries(tr.Series())
	}
	for _, link := range []string{"0-1", "1-2"} {
		s := timeline.NewSampler(timeline.Meta{Name: "noc/wc/link/" + link, IndexUnit: "cycles", Unit: "flits"}, 64, timeline.Sum)
		for c := int64(0); c < 1024; c += 32 {
			s.Add(c, 4)
		}
		col.AddSeries(s.Series())
	}
	h := timeline.NewHistogram(timeline.Meta{Name: "noc/wc/latency", IndexUnit: "packets", Unit: "cycles"})
	for v := int64(1); v <= 200; v++ {
		h.Observe(v)
	}
	col.AddSeries(h.Series())
	e := timeline.NewSampler(timeline.Meta{Name: "expt/wc/energy/winoc-best", IndexUnit: "vns", Unit: "J"}, 10, timeline.Sum)
	e.Add(5, 1.5)
	e.Add(25, 2.5)
	col.AddSeries(e.Series())
	return col.Export("test")
}

func TestReportRendersTimelines(t *testing.T) {
	set := sampleTimelines()
	html, err := renderHTML(ReportData{Title: "t", Timelines: set})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<h2>Timelines</h2>",
		"Worker phase strips",
		"Link heatmap",
		"Packet latency",
		"energy/winoc-best",
		`fill="#4063d8"`, // map phase rect and heatmap cells
		"p50",
	} {
		if !strings.Contains(string(html), want) {
			t.Errorf("HTML timelines section missing %q", want)
		}
	}

	md := renderMarkdown(ReportData{Title: "t", Timelines: set})
	for _, want := range []string{"## Timelines", "noc/wc/latency", "expt/wc/energy/winoc-best"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown timelines section missing %q", want)
		}
	}
}

func TestReportWithoutTimelinesUnchanged(t *testing.T) {
	html, err := renderHTML(ReportData{Title: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(html), "<h2>Timelines</h2>") {
		t.Error("timelines section rendered with nil set")
	}
	if strings.Contains(renderMarkdown(ReportData{Title: "t"}), "## Timelines") {
		t.Error("markdown timelines section rendered with nil set")
	}
}

func TestManifestHistogramRows(t *testing.T) {
	m := &obs.Manifest{
		Command: "test",
		Histograms: []obs.HistogramSummary{
			{Name: "noc/wc/latency", Unit: "cycles", Count: 200, Min: 1, P50: 100, P95: 191, P99: 199, Max: 200},
		},
	}
	html, err := renderHTML(ReportData{Title: "t", Manifest: m})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<th>p95</th>", "noc/wc/latency"} {
		if !strings.Contains(string(html), want) {
			t.Errorf("manifest histogram table missing %q", want)
		}
	}
	if !strings.Contains(renderMarkdown(ReportData{Title: "t", Manifest: m}), "| noc/wc/latency | 200 |") {
		t.Error("markdown manifest histogram row missing")
	}
}
