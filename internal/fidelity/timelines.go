package fidelity

import (
	"fmt"
	"html/template"
	"sort"
	"strings"

	"wivfi/internal/timeline"
)

// Timeline rendering: the run report's time-resolved section. The views
// are pure functions of a timeline.Set — per-worker phase strips, the
// per-link flit heatmap and the packet-latency histogram as inline SVG,
// plus sparkline rows for the windowed samplers (energy, island
// utilization, steals).

// phaseColors maps workload phase states to strip colors.
var phaseColors = map[string]string{
	"libinit": "#b08bd0",
	"split":   "#f4a261",
	"map":     "#4063d8",
	"reduce":  "#2a9d8f",
	"merge":   "#e9c46a",
	"idle":    "#ececec",
}

func phaseColor(state string) string {
	if c, ok := phaseColors[state]; ok {
		return c
	}
	return "#bbbbbb"
}

// timelineView is one benchmark's rendered timeline block.
type timelineView struct {
	App         string
	Strips      template.HTML
	StripNote   string
	Legend      []legendItem
	Heatmap     template.HTML
	HeatmapNote string
	Histogram   template.HTML
	HistNote    string
	Sparks      []timelineSpark
}

type legendItem struct {
	State string
	Color string
}

type timelineSpark struct {
	Name  string
	Unit  string
	Spark template.HTML
}

// timelineApps lists the benchmarks with worker phase strips in the set,
// in series order.
func timelineApps(set *timeline.Set) []string {
	seen := map[string]bool{}
	var apps []string
	for _, sr := range set.Series {
		rest, ok := strings.CutPrefix(sr.Name, "expt/")
		if !ok {
			continue
		}
		app, _, ok := strings.Cut(rest, "/")
		if ok && !seen[app] {
			seen[app] = true
			apps = append(apps, app)
		}
	}
	return apps
}

// timelineViews builds one rendered block per benchmark; the heatmap and
// histogram appear on the benchmarks that carry noc/<app>/ series (the
// DES-replayed one).
func timelineViews(set *timeline.Set) []timelineView {
	if set == nil {
		return nil
	}
	var views []timelineView
	for _, app := range timelineApps(set) {
		v := timelineView{App: app}
		v.Strips, v.StripNote, v.Legend = workerStripsSVG(set, app)
		v.Heatmap, v.HeatmapNote = linkHeatmapSVG(set, app)
		if lat := set.Lookup("noc/" + app + "/latency"); lat != nil && lat.Histogram != nil {
			v.Histogram, v.HistNote = latencyHistogramSVG(lat.Histogram)
		}
		v.Sparks = samplerSparks(set, app)
		views = append(views, v)
	}
	return views
}

// workerStripsSVG renders the per-worker phase tracks as horizontal
// strips over the shared virtual-time axis.
func workerStripsSVG(set *timeline.Set, app string) (template.HTML, string, []legendItem) {
	tracks := set.Prefix("expt/" + app + "/worker/")
	if len(tracks) == 0 {
		return "", "", nil
	}
	var total int64
	for _, tr := range tracks {
		if n := len(tr.Points); n > 0 && tr.Points[n-1].Index > total {
			total = tr.Points[n-1].Index
		}
	}
	if total == 0 {
		return "", "", nil
	}
	const width = 640.0
	rowH, gap := 6.0, 1.0
	height := float64(len(tracks)) * (rowH + gap)
	var b strings.Builder
	fmt.Fprintf(&b, `<svg width="%d" height="%d" viewBox="0 0 %d %d" role="img">`,
		int(width), int(height), int(width), int(height))
	states := map[string]bool{}
	for row, tr := range tracks {
		y := float64(row) * (rowH + gap)
		for i, p := range tr.Points {
			if p.State == "done" {
				continue
			}
			end := total
			if i+1 < len(tr.Points) {
				end = tr.Points[i+1].Index
			}
			x0 := width * float64(p.Index) / float64(total)
			x1 := width * float64(end) / float64(total)
			if x1 <= x0 {
				continue
			}
			states[p.State] = true
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s %s</title></rect>`,
				x0, y, x1-x0, rowH, phaseColor(p.State), template.HTMLEscapeString(tr.Name), p.State)
		}
	}
	b.WriteString(`</svg>`)
	var legend []legendItem
	for _, s := range []string{"libinit", "split", "map", "reduce", "merge", "idle"} {
		if states[s] {
			legend = append(legend, legendItem{State: s, Color: phaseColor(s)})
		}
	}
	note := fmt.Sprintf("%d workers × virtual time (%d ns span)", len(tracks), total)
	return template.HTML(b.String()), note, legend
}

// heatmapMaxRows bounds the heatmap to the hottest links.
const heatmapMaxRows = 24

// linkHeatmapSVG renders the per-link flit series as a heatmap: one row
// per link (hottest first), one column per cycle window.
func linkHeatmapSVG(set *timeline.Set, app string) (template.HTML, string) {
	links := set.Prefix("noc/" + app + "/link/")
	if len(links) == 0 {
		return "", ""
	}
	type row struct {
		name  string
		total float64
		vals  []float64
	}
	rows := make([]row, 0, len(links))
	var window int64
	maxBins := 0
	for _, sr := range links {
		var t float64
		for _, v := range sr.Values {
			t += v
		}
		rows = append(rows, row{name: strings.TrimPrefix(sr.Name, "noc/"+app+"/link/"), total: t, vals: sr.Values})
		window = sr.Window
		if len(sr.Values) > maxBins {
			maxBins = len(sr.Values)
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].total > rows[j].total })
	shown := rows
	if len(shown) > heatmapMaxRows {
		shown = shown[:heatmapMaxRows]
	}
	var peak float64
	for _, r := range shown {
		for _, v := range r.vals {
			if v > peak {
				peak = v
			}
		}
	}
	if peak == 0 || maxBins == 0 {
		return "", ""
	}
	const width = 560.0
	cellW := width / float64(maxBins)
	rowH, gap, labelW := 10.0, 1.0, 80.0
	height := float64(len(shown)) * (rowH + gap)
	var b strings.Builder
	fmt.Fprintf(&b, `<svg width="%d" height="%d" viewBox="0 0 %d %d" role="img">`,
		int(width+labelW), int(height), int(width+labelW), int(height))
	for i, r := range shown {
		y := float64(i) * (rowH + gap)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="8" fill="#555">%s</text>`,
			0.0, y+rowH-2, template.HTMLEscapeString(r.name))
		for bin, v := range r.vals {
			if v == 0 {
				continue
			}
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.2f" height="%.1f" fill="#4063d8" fill-opacity="%.3f"><title>%s @%d: %.0f flits</title></rect>`,
				labelW+float64(bin)*cellW, y, cellW, rowH, 0.15+0.85*v/peak,
				template.HTMLEscapeString(r.name), int64(bin)*window, v)
		}
	}
	b.WriteString(`</svg>`)
	note := fmt.Sprintf("top %d of %d links · %d-cycle windows · peak %.0f flits/window", len(shown), len(rows), window, peak)
	return template.HTML(b.String()), note
}

// latencyHistogramSVG renders the packet-latency distribution as bars,
// one per occupied log bucket.
func latencyHistogramSVG(d *timeline.HistogramData) (template.HTML, string) {
	if d.Count == 0 || len(d.Buckets) == 0 {
		return "", ""
	}
	var peak int64
	for _, b := range d.Buckets {
		if b.Count > peak {
			peak = b.Count
		}
	}
	const width, height = 560.0, 80.0
	barW := width / float64(len(d.Buckets))
	var b strings.Builder
	fmt.Fprintf(&b, `<svg width="%d" height="%d" viewBox="0 0 %d %d" role="img">`,
		int(width), int(height)+12, int(width), int(height)+12)
	for i, bk := range d.Buckets {
		h := height * float64(bk.Count) / float64(peak)
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.2f" height="%.1f" fill="#2a9d8f"><title>[%d,%d] cycles: %d packets</title></rect>`,
			float64(i)*barW, height-h, barW*0.9, h, bk.Lo, bk.Hi, bk.Count)
	}
	fmt.Fprintf(&b, `<text x="0" y="%d" font-size="9" fill="#555">%d</text>`, int(height)+10, d.Min)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="9" fill="#555" text-anchor="end">%d cycles</text>`,
		int(width), int(height)+10, d.Max)
	b.WriteString(`</svg>`)
	note := fmt.Sprintf("%d packets · p50 %d · p95 %d · p99 %d · max %d cycles",
		d.Count, d.P50, d.P95, d.P99, d.Max)
	return template.HTML(b.String()), note
}

// samplerSparks renders the benchmark's windowed samplers (energy, island
// utilization, steals) as labelled sparklines, in set order.
func samplerSparks(set *timeline.Set, app string) []timelineSpark {
	var out []timelineSpark
	for _, sr := range set.Prefix("expt/" + app + "/") {
		if sr.Kind != timeline.KindSampler {
			continue
		}
		out = append(out, timelineSpark{
			Name:  strings.TrimPrefix(sr.Name, "expt/"+app+"/"),
			Unit:  sr.Unit,
			Spark: sparkSVG(sr.Values),
		})
	}
	return out
}

// timelineMarkdown renders the set's compact markdown summary: histogram
// quantiles plus sparkline rows for every sampler.
func timelineMarkdown(set *timeline.Set) string {
	if set == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString("## Timelines\n\n")
	var hists, samplers, tracks int
	for _, sr := range set.Series {
		switch sr.Kind {
		case timeline.KindHistogram:
			hists++
		case timeline.KindSampler:
			samplers++
		case timeline.KindTrack:
			tracks++
		}
	}
	fmt.Fprintf(&b, "%d sampler(s), %d track(s), %d histogram(s).\n\n", samplers, tracks, hists)
	if hists > 0 {
		b.WriteString("| histogram | count | p50 | p95 | p99 | max |\n|---|---|---|---|---|---|\n")
		for _, sr := range set.Series {
			if sr.Kind != timeline.KindHistogram || sr.Histogram == nil {
				continue
			}
			d := sr.Histogram
			fmt.Fprintf(&b, "| `%s` | %d | %d | %d | %d | %d |\n", sr.Name, d.Count, d.P50, d.P95, d.P99, d.Max)
		}
		b.WriteString("\n")
	}
	for _, app := range timelineApps(set) {
		fmt.Fprintf(&b, "### %s\n\n", app)
		fmt.Fprintf(&b, "| series | window | sparkline |\n|---|---|---|\n")
		for _, sr := range set.Prefix("expt/" + app + "/") {
			if sr.Kind != timeline.KindSampler {
				continue
			}
			fmt.Fprintf(&b, "| `%s` | %d | %s |\n", sr.Name, sr.Window, sparkGlyphs(sr.Values))
		}
		b.WriteString("\n")
	}
	return b.String()
}
