package fidelity

import (
	"fmt"
	"math"
	"sort"
)

// DiffOptions tunes the snapshot comparison. The zero value gets sane
// defaults from Diff: a 1e-6 relative tolerance (wide enough for
// cross-architecture floating-point drift such as FMA contraction, far
// tighter than any real model change) with a 1e-9 absolute floor for
// near-zero metrics.
type DiffOptions struct {
	RelTol float64
	AbsTol float64
	// PerMetric overrides the relative tolerance for individual metric
	// addresses (as produced by Address).
	PerMetric map[string]float64
}

// FindingKind classifies one diff finding.
type FindingKind string

const (
	// Changed: the metric moved beyond tolerance.
	Changed FindingKind = "changed"
	// Removed: the baseline has a metric/row/section the current snapshot
	// lacks — coverage regressed.
	Removed FindingKind = "removed"
	// Added: the current snapshot has a metric the baseline lacks. New
	// coverage is informational, never a regression.
	Added FindingKind = "added"
	// LabelChanged: a categorical value differs (e.g. the winning
	// placement strategy flipped).
	LabelChanged FindingKind = "label-changed"
)

// Finding is one out-of-tolerance difference.
type Finding struct {
	Kind     FindingKind `json:"kind"`
	Address  string      `json:"address"`
	Old      float64     `json:"old,omitempty"`
	New      float64     `json:"new,omitempty"`
	OldLabel string      `json:"old_label,omitempty"`
	NewLabel string      `json:"new_label,omitempty"`
	RelDelta float64     `json:"rel_delta,omitempty"`
	Note     string      `json:"note,omitempty"`
}

func (f Finding) String() string {
	switch f.Kind {
	case Changed:
		return fmt.Sprintf("%s: %s %.6g -> %.6g (%+.3g%%)", f.Kind, f.Address, f.Old, f.New, 100*f.RelDelta)
	case LabelChanged:
		return fmt.Sprintf("%s: %s %q -> %q", f.Kind, f.Address, f.OldLabel, f.NewLabel)
	default:
		s := fmt.Sprintf("%s: %s", f.Kind, f.Address)
		if f.Note != "" {
			s += " (" + f.Note + ")"
		}
		return s
	}
}

// DiffReport is the outcome of comparing a current snapshot against a
// baseline.
type DiffReport struct {
	BaselineConfigHash string    `json:"baseline_config_hash"`
	CurrentConfigHash  string    `json:"current_config_hash"`
	ConfigMismatch     bool      `json:"config_mismatch"`
	Compared           int       `json:"compared"` // scalar metrics compared
	Findings           []Finding `json:"findings,omitempty"`
}

// Regressions returns the findings that should gate a CI run: everything
// except purely additive coverage.
func (d *DiffReport) Regressions() []Finding {
	var out []Finding
	for _, f := range d.Findings {
		if f.Kind != Added {
			out = append(out, f)
		}
	}
	return out
}

// Clean reports whether the diff found no regressions and the
// configurations match.
func (d *DiffReport) Clean() bool {
	return !d.ConfigMismatch && len(d.Regressions()) == 0
}

// Diff compares current against baseline metric-by-metric. Scalar values
// (including series elements) compare within max(RelTol·|old|, AbsTol);
// labels compare exactly. Rows and sections present only on one side
// produce Removed/Added findings. A config-hash mismatch is flagged but
// the value comparison still runs — the numbers show what the config
// change did.
func Diff(current, baseline *Snapshot, opts DiffOptions) *DiffReport {
	if opts.RelTol == 0 {
		opts.RelTol = 1e-6
	}
	if opts.AbsTol == 0 {
		opts.AbsTol = 1e-9
	}
	d := &DiffReport{
		BaselineConfigHash: baseline.ConfigHash,
		CurrentConfigHash:  current.ConfigHash,
		ConfigMismatch:     baseline.ConfigHash != current.ConfigHash,
	}

	within := func(addr string, old, cur float64) (float64, bool) {
		rel := opts.RelTol
		if t, ok := opts.PerMetric[addr]; ok {
			rel = t
		}
		tol := math.Max(rel*math.Abs(old), opts.AbsTol)
		delta := cur - old
		relDelta := 0.0
		if old != 0 {
			relDelta = delta / old
		}
		return relDelta, math.Abs(delta) <= tol
	}

	for _, bsec := range baseline.Sections {
		csec := current.Section(bsec.ID)
		if csec == nil {
			d.Findings = append(d.Findings, Finding{
				Kind: Removed, Address: bsec.ID,
				Note: fmt.Sprintf("section with %d row(s) missing from current snapshot", len(bsec.Rows)),
			})
			continue
		}
		for _, brow := range bsec.Rows {
			crow := csec.Row(brow.Key)
			if crow == nil {
				d.Findings = append(d.Findings, Finding{
					Kind: Removed, Address: bsec.ID + "[" + brow.Key + "]",
					Note: "row missing from current snapshot",
				})
				continue
			}
			for _, name := range sortedKeys(brow.Values) {
				addr := Address(bsec.ID, brow.Key, name)
				old := brow.Values[name]
				cur, ok := crow.Values[name]
				if !ok {
					d.Findings = append(d.Findings, Finding{Kind: Removed, Address: addr, Note: "metric missing"})
					continue
				}
				d.Compared++
				if rel, ok := within(addr, old, cur); !ok {
					d.Findings = append(d.Findings, Finding{Kind: Changed, Address: addr, Old: old, New: cur, RelDelta: rel})
				}
			}
			for _, name := range sortedKeys(brow.Labels) {
				addr := Address(bsec.ID, brow.Key, name)
				old := brow.Labels[name]
				cur, ok := crow.Labels[name]
				if !ok {
					d.Findings = append(d.Findings, Finding{Kind: Removed, Address: addr, Note: "label missing"})
					continue
				}
				if cur != old {
					d.Findings = append(d.Findings, Finding{Kind: LabelChanged, Address: addr, OldLabel: old, NewLabel: cur})
				}
			}
			if len(brow.Series) > 0 {
				addr := Address(bsec.ID, brow.Key, "series")
				if len(crow.Series) != len(brow.Series) {
					d.Findings = append(d.Findings, Finding{
						Kind: Changed, Address: addr,
						Old: float64(len(brow.Series)), New: float64(len(crow.Series)),
						Note: "series length changed",
					})
				} else {
					worst, worstIdx, bad := 0.0, -1, false
					for i := range brow.Series {
						d.Compared++
						rel, ok := within(addr, brow.Series[i], crow.Series[i])
						if !ok && math.Abs(rel) >= math.Abs(worst) {
							worst, worstIdx, bad = rel, i, true
						}
					}
					if bad {
						d.Findings = append(d.Findings, Finding{
							Kind: Changed, Address: fmt.Sprintf("%s[%d]", addr, worstIdx),
							Old: brow.Series[worstIdx], New: crow.Series[worstIdx], RelDelta: worst,
							Note: "largest series deviation",
						})
					}
				}
			}
			// additions within an existing row
			for _, name := range sortedKeys(crow.Values) {
				if _, ok := brow.Values[name]; !ok {
					d.Findings = append(d.Findings, Finding{Kind: Added, Address: Address(bsec.ID, brow.Key, name)})
				}
			}
		}
		for _, crow := range csec.Rows {
			if bsec.Row(crow.Key) == nil {
				d.Findings = append(d.Findings, Finding{Kind: Added, Address: bsec.ID + "[" + crow.Key + "]"})
			}
		}
	}
	for _, csec := range current.Sections {
		if baseline.Section(csec.ID) == nil {
			d.Findings = append(d.Findings, Finding{Kind: Added, Address: csec.ID})
		}
	}
	return d
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
