package platform

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultDVFSTableOrderedAndPositive(t *testing.T) {
	table := DefaultDVFSTable()
	if len(table) != 5 {
		t.Fatalf("expected 5 operating points, got %d", len(table))
	}
	for i, op := range table {
		if op.VoltageV <= 0 || op.FreqGHz <= 0 {
			t.Errorf("point %d not positive: %+v", i, op)
		}
		if i > 0 {
			prev := table[i-1]
			if op.FreqGHz <= prev.FreqGHz || op.VoltageV <= prev.VoltageV {
				t.Errorf("table not strictly ascending at %d: %+v after %+v", i, op, prev)
			}
		}
	}
	top := table[len(table)-1]
	if top.VoltageV != 1.0 || top.FreqGHz != 2.5 {
		t.Errorf("top point = %+v, want 1.0/2.5", top)
	}
}

func TestOperatingPointString(t *testing.T) {
	op := OperatingPoint{VoltageV: 0.9, FreqGHz: 2.25}
	if got := op.String(); got != "0.9/2.25" {
		t.Errorf("String = %q, want 0.9/2.25", got)
	}
	op2 := OperatingPoint{VoltageV: 1.0, FreqGHz: 2.5}
	if got := op2.String(); got != "1.0/2.5" {
		t.Errorf("String = %q, want 1.0/2.5", got)
	}
}

func TestMaxPoint(t *testing.T) {
	table := DefaultDVFSTable()
	if got := MaxPoint(table); got.FreqGHz != 2.5 {
		t.Errorf("MaxPoint = %+v", got)
	}
}

func TestQuantizeUp(t *testing.T) {
	table := DefaultDVFSTable()
	cases := []struct {
		f    float64
		want float64
	}{
		{0.1, 1.5},
		{1.5, 1.5},
		{1.51, 1.75},
		{2.0, 2.0},
		{2.26, 2.5},
		{2.5, 2.5},
		{9.9, 2.5}, // clamps to max
	}
	for _, c := range cases {
		if got := QuantizeUp(table, c.f); got.FreqGHz != c.want {
			t.Errorf("QuantizeUp(%v) = %v, want %v GHz", c.f, got.FreqGHz, c.want)
		}
	}
}

func TestStepUp(t *testing.T) {
	table := DefaultDVFSTable()
	got := StepUp(table, OperatingPoint{VoltageV: 0.9, FreqGHz: 2.25})
	if got.FreqGHz != 2.5 {
		t.Errorf("StepUp(2.25) = %v, want 2.5", got.FreqGHz)
	}
	top := MaxPoint(table)
	if got := StepUp(table, top); got != top {
		t.Errorf("StepUp(top) = %v, want unchanged", got)
	}
}

func TestChipCoordRoundTrip(t *testing.T) {
	c := DefaultChip()
	if c.NumCores() != 64 {
		t.Fatalf("NumCores = %d, want 64", c.NumCores())
	}
	for id := 0; id < c.NumCores(); id++ {
		r, col := c.Coord(id)
		if back := c.ID(r, col); back != id {
			t.Errorf("Coord/ID round trip failed for %d: got %d", id, back)
		}
	}
}

func TestChipCoordPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Coord(64) did not panic on 8x8 chip")
		}
	}()
	DefaultChip().Coord(64)
}

func TestManhattanHops(t *testing.T) {
	c := DefaultChip()
	cases := []struct {
		a, b, want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 8, 1},
		{0, 63, 14}, // corner to corner on 8x8
		{9, 18, 2},
	}
	for _, cse := range cases {
		if got := c.ManhattanHops(cse.a, cse.b); got != cse.want {
			t.Errorf("ManhattanHops(%d,%d) = %d, want %d", cse.a, cse.b, got, cse.want)
		}
	}
}

func TestEuclideanMM(t *testing.T) {
	c := DefaultChip()
	if got := c.EuclideanMM(0, 1); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("EuclideanMM adjacent = %v, want 2.5", got)
	}
	want := math.Hypot(2.5, 2.5)
	if got := c.EuclideanMM(0, 9); math.Abs(got-want) > 1e-12 {
		t.Errorf("EuclideanMM diagonal = %v, want %v", got, want)
	}
}

func TestManhattanSymmetryProperty(t *testing.T) {
	c := DefaultChip()
	f := func(a, b uint8) bool {
		x := int(a) % c.NumCores()
		y := int(b) % c.NumCores()
		return c.ManhattanHops(x, y) == c.ManhattanHops(y, x) &&
			c.EuclideanMM(x, y) == c.EuclideanMM(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUniformConfig(t *testing.T) {
	op := OperatingPoint{VoltageV: 1.0, FreqGHz: 2.5}
	cfg := Uniform(64, op)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if cfg.NumIslands() != 1 {
		t.Errorf("NumIslands = %d, want 1", cfg.NumIslands())
	}
	for core := 0; core < 64; core++ {
		if cfg.PointOf(core) != op {
			t.Fatalf("core %d at %v, want %v", core, cfg.PointOf(core), op)
		}
	}
	if cfg.MaxFreq() != 2.5 {
		t.Errorf("MaxFreq = %v", cfg.MaxFreq())
	}
}

func TestVFIConfigIslands(t *testing.T) {
	cfg := VFIConfig{
		Assign: []int{0, 1, 0, 1},
		Points: []OperatingPoint{{0.8, 2.0}, {1.0, 2.5}},
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	islands := cfg.Islands()
	if len(islands) != 2 {
		t.Fatalf("Islands count = %d", len(islands))
	}
	if islands[0][0] != 0 || islands[0][1] != 2 {
		t.Errorf("island 0 = %v, want [0 2]", islands[0])
	}
	if islands[1][0] != 1 || islands[1][1] != 3 {
		t.Errorf("island 1 = %v, want [1 3]", islands[1])
	}
	if cfg.FreqOf(3) != 2.5 {
		t.Errorf("FreqOf(3) = %v", cfg.FreqOf(3))
	}
}

func TestVFIConfigValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		cfg  VFIConfig
	}{
		{"no points", VFIConfig{Assign: []int{0}}},
		{"bad island index", VFIConfig{Assign: []int{2}, Points: []OperatingPoint{{1, 2.5}}}},
		{"negative island index", VFIConfig{Assign: []int{-1}, Points: []OperatingPoint{{1, 2.5}}}},
		{"empty island", VFIConfig{Assign: []int{0, 0}, Points: []OperatingPoint{{1, 2.5}, {0.8, 2.0}}}},
		{"zero frequency", VFIConfig{Assign: []int{0}, Points: []OperatingPoint{{1, 0}}}},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid config", c.name)
		}
	}
}

func TestVFIConfigClone(t *testing.T) {
	cfg := VFIConfig{Assign: []int{0, 1}, Points: []OperatingPoint{{0.8, 2.0}, {1.0, 2.5}}}
	clone := cfg.Clone()
	clone.Assign[0] = 1
	clone.Points[0] = OperatingPoint{0.6, 1.5}
	if cfg.Assign[0] != 0 || cfg.Points[0].FreqGHz != 2.0 {
		t.Error("Clone shares storage with original")
	}
}

func TestProfileValidate(t *testing.T) {
	good := Profile{
		Util:    []float64{0.5, 0.7},
		Traffic: [][]float64{{0, 1}, {2, 0}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	if good.NumCores() != 2 {
		t.Errorf("NumCores = %d", good.NumCores())
	}
	if got := good.TotalTraffic(); got != 3 {
		t.Errorf("TotalTraffic = %v, want 3", got)
	}

	bad := []Profile{
		{Util: []float64{0.5}, Traffic: [][]float64{{0, 1}, {1, 0}}},       // row count mismatch
		{Util: []float64{1.5, 0.2}, Traffic: [][]float64{{0, 0}, {0, 0}}},  // util out of range
		{Util: []float64{0.5, 0.2}, Traffic: [][]float64{{0, -1}, {0, 0}}}, // negative traffic
		{Util: []float64{0.5, 0.2}, Traffic: [][]float64{{1, 0}, {0, 0}}},  // self traffic
		{Util: []float64{0.5, 0.2}, Traffic: [][]float64{{0}, {0, 0}}},     // ragged row
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
}
