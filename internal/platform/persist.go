package platform

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// profileJSON is the stable on-disk schema for Profile.
type profileJSON struct {
	Version int         `json:"version"`
	Util    []float64   `json:"util"`
	Traffic [][]float64 `json:"traffic"`
}

// profileSchemaVersion guards against silently loading incompatible files.
const profileSchemaVersion = 1

// WriteProfile serializes a profile as JSON. Profiles are the hand-off
// artifact between the characterization run and the VFI design flow, so
// they can be captured once and re-planned offline (cmd/vfiplan -load).
func WriteProfile(w io.Writer, p Profile) error {
	if err := p.Validate(); err != nil {
		return fmt.Errorf("platform: refusing to write invalid profile: %w", err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(profileJSON{
		Version: profileSchemaVersion,
		Util:    p.Util,
		Traffic: p.Traffic,
	})
}

// ReadProfile deserializes and validates a profile written by WriteProfile.
func ReadProfile(r io.Reader) (Profile, error) {
	var pj profileJSON
	if err := json.NewDecoder(r).Decode(&pj); err != nil {
		return Profile{}, fmt.Errorf("platform: decoding profile: %w", err)
	}
	if pj.Version != profileSchemaVersion {
		return Profile{}, fmt.Errorf("platform: profile schema version %d, want %d", pj.Version, profileSchemaVersion)
	}
	p := Profile{Util: pj.Util, Traffic: pj.Traffic}
	if err := p.Validate(); err != nil {
		return Profile{}, fmt.Errorf("platform: loaded profile invalid: %w", err)
	}
	return p, nil
}

// vfiConfigJSON is the stable on-disk schema for VFIConfig.
type vfiConfigJSON struct {
	Version int              `json:"version"`
	Assign  []int            `json:"assign"`
	Points  []OperatingPoint `json:"points"`
}

// vfiConfigSchemaVersion versions the VFI-config schema independently of
// the profile schema (they used to share one constant, coupling two
// formats that evolve separately).
const vfiConfigSchemaVersion = 1

// WriteVFIConfig serializes a VFI configuration as JSON.
func WriteVFIConfig(w io.Writer, cfg VFIConfig) error {
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("platform: refusing to write invalid VFI config: %w", err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(vfiConfigJSON{
		Version: vfiConfigSchemaVersion,
		Assign:  cfg.Assign,
		Points:  cfg.Points,
	})
}

// ReadVFIConfig deserializes and validates a configuration written by
// WriteVFIConfig.
func ReadVFIConfig(r io.Reader) (VFIConfig, error) {
	var cj vfiConfigJSON
	if err := json.NewDecoder(r).Decode(&cj); err != nil {
		return VFIConfig{}, fmt.Errorf("platform: decoding VFI config: %w", err)
	}
	if cj.Version != vfiConfigSchemaVersion {
		return VFIConfig{}, fmt.Errorf("platform: VFI config schema version %d, want %d", cj.Version, vfiConfigSchemaVersion)
	}
	cfg := VFIConfig{Assign: cj.Assign, Points: cj.Points}
	if err := cfg.Validate(); err != nil {
		return VFIConfig{}, fmt.Errorf("platform: loaded VFI config invalid: %w", err)
	}
	return cfg, nil
}

// SaveProfile writes a profile to path atomically (write to a temp file in
// the same directory, then rename), so concurrent readers never observe a
// torn file — the experiment harness caches profiles from parallel
// pipeline builds.
func SaveProfile(path string, p Profile) error {
	return atomicWrite(path, func(w io.Writer) error { return WriteProfile(w, p) })
}

// LoadProfile reads a profile written by SaveProfile.
func LoadProfile(path string) (Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return Profile{}, err
	}
	defer f.Close()
	return ReadProfile(f)
}

// SaveVFIConfig writes a VFI configuration to path atomically.
func SaveVFIConfig(path string, cfg VFIConfig) error {
	return atomicWrite(path, func(w io.Writer) error { return WriteVFIConfig(w, cfg) })
}

// LoadVFIConfig reads a configuration written by SaveVFIConfig.
func LoadVFIConfig(path string) (VFIConfig, error) {
	f, err := os.Open(path)
	if err != nil {
		return VFIConfig{}, err
	}
	defer f.Close()
	return ReadVFIConfig(f)
}

// atomicWrite streams through write into a temporary sibling of path and
// renames it into place on success.
func atomicWrite(path string, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
