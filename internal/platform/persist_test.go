package platform

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func randomProfile(seed int64, n int) Profile {
	rng := rand.New(rand.NewSource(seed))
	p := Profile{Util: make([]float64, n), Traffic: make([][]float64, n)}
	for i := range p.Util {
		p.Util[i] = rng.Float64()
		p.Traffic[i] = make([]float64, n)
		for j := range p.Traffic[i] {
			if i != j {
				p.Traffic[i][j] = rng.Float64() * 10
			}
		}
	}
	return p
}

func TestProfileRoundTrip(t *testing.T) {
	p := randomProfile(1, 16)
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Util {
		if got.Util[i] != p.Util[i] {
			t.Fatalf("util[%d] changed: %v vs %v", i, got.Util[i], p.Util[i])
		}
		for j := range p.Traffic[i] {
			if got.Traffic[i][j] != p.Traffic[i][j] {
				t.Fatalf("traffic[%d][%d] changed", i, j)
			}
		}
	}
}

func TestWriteProfileRejectsInvalid(t *testing.T) {
	bad := Profile{Util: []float64{2}, Traffic: [][]float64{{0}}}
	if err := WriteProfile(&bytes.Buffer{}, bad); err == nil {
		t.Error("invalid profile written")
	}
}

func TestReadProfileRejectsGarbage(t *testing.T) {
	if _, err := ReadProfile(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadProfile(strings.NewReader(`{"version":99,"util":[0.5],"traffic":[[0]]}`)); err == nil {
		t.Error("wrong schema version accepted")
	}
	// structurally valid JSON, semantically invalid profile
	if _, err := ReadProfile(strings.NewReader(`{"version":1,"util":[1.5],"traffic":[[0]]}`)); err == nil {
		t.Error("out-of-range utilization accepted")
	}
}

func TestVFIConfigRoundTrip(t *testing.T) {
	cfg := VFIConfig{
		Assign: []int{0, 1, 0, 1},
		Points: []OperatingPoint{{VoltageV: 0.8, FreqGHz: 2.0}, {VoltageV: 1.0, FreqGHz: 2.5}},
	}
	var buf bytes.Buffer
	if err := WriteVFIConfig(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	got, err := ReadVFIConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfg.Assign {
		if got.Assign[i] != cfg.Assign[i] {
			t.Fatal("assignment changed")
		}
	}
	for j := range cfg.Points {
		if got.Points[j] != cfg.Points[j] {
			t.Fatal("points changed")
		}
	}
}

func TestReadVFIConfigRejectsInvalid(t *testing.T) {
	if _, err := ReadVFIConfig(strings.NewReader(`{"version":1,"assign":[5],"points":[{"VoltageV":1,"FreqGHz":2.5}]}`)); err == nil {
		t.Error("invalid island index accepted")
	}
	if err := WriteVFIConfig(&bytes.Buffer{}, VFIConfig{}); err == nil {
		t.Error("empty config written")
	}
}

func TestProfileFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p := Profile{
		Util:    []float64{0.5, 0.75},
		Traffic: [][]float64{{0, 1}, {2, 0}},
	}
	path := filepath.Join(dir, "profile.json")
	if err := SaveProfile(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Errorf("round trip changed profile: %+v vs %+v", got, p)
	}
	// no temp files left behind
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("stray files after atomic write: %v", entries)
	}
	if _, err := LoadProfile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
}

func TestVFIConfigFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := VFIConfig{
		Assign: []int{0, 1, 0, 1},
		Points: []OperatingPoint{{VoltageV: 0.8, FreqGHz: 2.0}, {VoltageV: 1.0, FreqGHz: 2.5}},
	}
	path := filepath.Join(dir, "vfi.json")
	if err := SaveVFIConfig(path, cfg); err != nil {
		t.Fatal(err)
	}
	got, err := LoadVFIConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cfg) {
		t.Errorf("round trip changed config: %+v vs %+v", got, cfg)
	}
	// invalid configs must not be persisted at all
	if err := SaveVFIConfig(filepath.Join(dir, "bad.json"), VFIConfig{}); err == nil {
		t.Error("invalid config saved")
	}
	if _, err := os.Stat(filepath.Join(dir, "bad.json")); !os.IsNotExist(err) {
		t.Error("invalid config left a file behind")
	}
}
