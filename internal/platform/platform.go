// Package platform models the 64-core multicore chip the paper evaluates:
// homogeneous x86-like cores laid out on an 8x8 grid of tiles, a discrete
// DVFS operating-point table, and Voltage/Frequency Island (VFI) partitions
// that assign one operating point to each island.
//
// The package deliberately contains no behaviour — it is the shared
// vocabulary for the clustering (internal/vfi), scheduling (internal/sched),
// network (internal/noc, internal/topo) and energy (internal/energy) layers.
package platform

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// OperatingPoint is one voltage/frequency pair from the chip's DVFS table.
type OperatingPoint struct {
	VoltageV float64 // supply voltage in volts
	FreqGHz  float64 // clock frequency in GHz
}

// String renders the point the way the paper's Table 2 does, e.g. "1.0/2.5".
func (op OperatingPoint) String() string {
	f := strconv.FormatFloat(op.FreqGHz, 'f', -1, 64)
	if !strings.Contains(f, ".") {
		f += ".0"
	}
	return fmt.Sprintf("%.1f/%s", op.VoltageV, f)
}

// IsZero reports whether the operating point is the zero value.
func (op OperatingPoint) IsZero() bool {
	return op.VoltageV == 0 && op.FreqGHz == 0
}

// DefaultDVFSTable is the discrete V/F ladder used throughout the paper's
// evaluation. The three highest points (0.8/2.0, 0.9/2.25, 1.0/2.5) appear
// explicitly in Table 2 together with 0.6/1.5 for Kmeans; 0.7/1.75 completes
// a uniform 0.1 V / 0.25 GHz ladder. Points are ordered by ascending
// frequency.
func DefaultDVFSTable() []OperatingPoint {
	return []OperatingPoint{
		{VoltageV: 0.6, FreqGHz: 1.5},
		{VoltageV: 0.7, FreqGHz: 1.75},
		{VoltageV: 0.8, FreqGHz: 2.0},
		{VoltageV: 0.9, FreqGHz: 2.25},
		{VoltageV: 1.0, FreqGHz: 2.5},
	}
}

// MaxPoint returns the highest-frequency point of a DVFS table.
func MaxPoint(table []OperatingPoint) OperatingPoint {
	if len(table) == 0 {
		panic("platform: empty DVFS table")
	}
	best := table[0]
	for _, op := range table[1:] {
		if op.FreqGHz > best.FreqGHz {
			best = op
		}
	}
	return best
}

// QuantizeUp returns the lowest table point whose frequency is >= fGHz.
// If fGHz exceeds every table frequency the highest point is returned; the
// V/F selection rule clamps rather than fails when a cluster is fully busy.
func QuantizeUp(table []OperatingPoint, fGHz float64) OperatingPoint {
	if len(table) == 0 {
		panic("platform: empty DVFS table")
	}
	best := MaxPoint(table)
	for _, op := range table {
		if op.FreqGHz >= fGHz && op.FreqGHz < best.FreqGHz {
			best = op
		}
	}
	if best.FreqGHz >= fGHz {
		return best
	}
	return MaxPoint(table)
}

// StepUp returns the next higher point in the table after op, or op itself
// if op is already the highest point. It is used by the VFI 2 re-assignment,
// which raises the bottleneck cluster by (at least) one ladder step.
func StepUp(table []OperatingPoint, op OperatingPoint) OperatingPoint {
	next := OperatingPoint{}
	for _, cand := range table {
		if cand.FreqGHz > op.FreqGHz && (next.IsZero() || cand.FreqGHz < next.FreqGHz) {
			next = cand
		}
	}
	if next.IsZero() {
		return op
	}
	return next
}

// Chip describes the physical organisation of the multicore die.
type Chip struct {
	Rows, Cols int     // tile grid dimensions; NumCores = Rows*Cols
	TileMM     float64 // tile edge length in millimetres (link-length unit)
}

// DefaultChip returns the paper's platform: 64 cores on an 8x8 grid. The
// 2.5 mm tile edge corresponds to a ~20 mm die edge at 65 nm, the process
// node of the paper's synthesized switches.
func DefaultChip() Chip {
	return Chip{Rows: 8, Cols: 8, TileMM: 2.5}
}

// NumCores returns the number of cores (= tiles = NoC switches) on the chip.
func (c Chip) NumCores() int { return c.Rows * c.Cols }

// Coord returns the (row, col) grid position of core id.
func (c Chip) Coord(id int) (row, col int) {
	if id < 0 || id >= c.NumCores() {
		panic(fmt.Sprintf("platform: core id %d out of range [0,%d)", id, c.NumCores()))
	}
	return id / c.Cols, id % c.Cols
}

// ID returns the core id at grid position (row, col).
func (c Chip) ID(row, col int) int {
	if row < 0 || row >= c.Rows || col < 0 || col >= c.Cols {
		panic(fmt.Sprintf("platform: coord (%d,%d) out of %dx%d grid", row, col, c.Rows, c.Cols))
	}
	return row*c.Cols + col
}

// ManhattanHops returns the mesh hop distance between two cores.
func (c Chip) ManhattanHops(a, b int) int {
	ar, ac := c.Coord(a)
	br, bc := c.Coord(b)
	return abs(ar-br) + abs(ac-bc)
}

// EuclideanMM returns the physical centre-to-centre distance between two
// tiles in millimetres, used to size wireline link energy and delay.
func (c Chip) EuclideanMM(a, b int) float64 {
	ar, ac := c.Coord(a)
	br, bc := c.Coord(b)
	dr := float64(ar-br) * c.TileMM
	dc := float64(ac-bc) * c.TileMM
	return math.Hypot(dr, dc)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// VFIConfig assigns every core to a voltage/frequency island and every
// island to an operating point. A nil/empty config means "non-VFI": all
// cores at the table maximum.
type VFIConfig struct {
	// Assign maps core id -> island index in [0, NumIslands).
	Assign []int
	// Points maps island index -> operating point.
	Points []OperatingPoint
}

// Uniform returns a VFI configuration with every one of n cores in a single
// island running at op. It models the non-VFI baseline.
func Uniform(n int, op OperatingPoint) VFIConfig {
	cfg := VFIConfig{Assign: make([]int, n), Points: []OperatingPoint{op}}
	return cfg
}

// NumIslands returns the number of islands in the configuration.
func (v VFIConfig) NumIslands() int { return len(v.Points) }

// PointOf returns the operating point of core id.
func (v VFIConfig) PointOf(core int) OperatingPoint {
	return v.Points[v.Assign[core]]
}

// FreqOf returns the clock frequency (GHz) of core id.
func (v VFIConfig) FreqOf(core int) float64 { return v.PointOf(core).FreqGHz }

// MaxFreq returns the highest island frequency in the configuration.
func (v VFIConfig) MaxFreq() float64 {
	var f float64
	for _, p := range v.Points {
		if p.FreqGHz > f {
			f = p.FreqGHz
		}
	}
	return f
}

// Islands returns, for each island, the sorted list of core ids assigned to
// it.
func (v VFIConfig) Islands() [][]int {
	out := make([][]int, v.NumIslands())
	for core, isl := range v.Assign {
		out[isl] = append(out[isl], core)
	}
	return out
}

// Validate checks structural invariants: every core assigned to a valid
// island and at least one core per island.
func (v VFIConfig) Validate() error {
	if len(v.Points) == 0 {
		return fmt.Errorf("platform: VFI config has no operating points")
	}
	seen := make([]int, v.NumIslands())
	for core, isl := range v.Assign {
		if isl < 0 || isl >= v.NumIslands() {
			return fmt.Errorf("platform: core %d assigned to invalid island %d", core, isl)
		}
		seen[isl]++
	}
	for isl, n := range seen {
		if n == 0 {
			return fmt.Errorf("platform: island %d has no cores", isl)
		}
	}
	for isl, p := range v.Points {
		if p.FreqGHz <= 0 || p.VoltageV <= 0 {
			return fmt.Errorf("platform: island %d has non-positive operating point %v", isl, p)
		}
	}
	return nil
}

// Clone returns a deep copy of the configuration.
func (v VFIConfig) Clone() VFIConfig {
	return VFIConfig{
		Assign: append([]int(nil), v.Assign...),
		Points: append([]OperatingPoint(nil), v.Points...),
	}
}

// Profile is the per-benchmark characterization the VFI flow consumes:
// per-core utilization and the core-to-core traffic matrix, both measured on
// the non-VFI baseline system (step 1 of the paper's Fig. 3 design flow).
type Profile struct {
	// Util[i] is core i's utilization in [0,1]: committed IPC normalized to
	// issue width, averaged over the whole run.
	Util []float64
	// Traffic[i][p] is the flit rate from core i to core p (flits per
	// microsecond of baseline execution).
	Traffic [][]float64
}

// NumCores returns the number of cores covered by the profile.
func (p Profile) NumCores() int { return len(p.Util) }

// Validate checks that the profile is square, self-traffic-free and within
// physical ranges.
func (p Profile) Validate() error {
	n := len(p.Util)
	if len(p.Traffic) != n {
		return fmt.Errorf("platform: traffic matrix has %d rows for %d cores", len(p.Traffic), n)
	}
	for i, u := range p.Util {
		if u < 0 || u > 1 {
			return fmt.Errorf("platform: core %d utilization %v out of [0,1]", i, u)
		}
	}
	for i, row := range p.Traffic {
		if len(row) != n {
			return fmt.Errorf("platform: traffic row %d has %d columns for %d cores", i, len(row), n)
		}
		for j, v := range row {
			if v < 0 {
				return fmt.Errorf("platform: negative traffic %v at (%d,%d)", v, i, j)
			}
			if i == j && v != 0 {
				return fmt.Errorf("platform: self traffic %v at core %d", v, i)
			}
		}
	}
	return nil
}

// TotalTraffic returns the sum of all traffic matrix entries.
func (p Profile) TotalTraffic() float64 {
	var sum float64
	for _, row := range p.Traffic {
		for _, v := range row {
			sum += v
		}
	}
	return sum
}
